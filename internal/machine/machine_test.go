package machine

import (
	"testing"

	"bisectlb/internal/bisect"
	"bisectlb/internal/bounds"
	"bisectlb/internal/core"
	"bisectlb/internal/topology"
)

func TestEngineOrdersEvents(t *testing.T) {
	e := &engine{}
	var order []int
	e.at(5, func() { order = append(order, 5) })
	e.at(1, func() { order = append(order, 1) })
	e.at(3, func() {
		order = append(order, 3)
		e.at(4, func() { order = append(order, 4) })
	})
	end := e.run()
	want := []int{1, 3, 4, 5}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if end != 5 {
		t.Fatalf("end time = %d", end)
	}
}

func TestEngineTiesFIFO(t *testing.T) {
	e := &engine{}
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.at(7, func() { order = append(order, i) })
	}
	e.run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("tie order = %v", order)
		}
	}
}

func TestEngineRejectsPastEvents(t *testing.T) {
	e := &engine{}
	e.at(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.at(3, func() {})
	})
	e.run()
}

func TestRunHFLinearMakespan(t *testing.T) {
	p := bisect.MustSynthetic(1, 0.1, 0.5, 1)
	m, err := RunHF(p, 256)
	if err != nil {
		t.Fatal(err)
	}
	// 255 bisections + 255 sends.
	if m.Makespan != 510 {
		t.Fatalf("makespan = %d, want 510", m.Makespan)
	}
	if m.Messages != 255 || m.Bisections != 255 || m.Parts != 256 {
		t.Fatalf("messages=%d bisections=%d parts=%d", m.Messages, m.Bisections, m.Parts)
	}
}

func TestRunBALogarithmicMakespan(t *testing.T) {
	p := bisect.MustSynthetic(1, 0.2, 0.5, 2)
	m10, err := RunBA(p, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	m16, err := RunBA(p, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if m10.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	// O(log N): 64× more processors must cost far less than 64× time.
	if growth := float64(m16.Makespan) / float64(m10.Makespan); growth > 3 {
		t.Fatalf("BA makespan grew %vx — not logarithmic", growth)
	}
	// Depth bound in model time: every level costs ≤ bisect+send.
	limit := int64(bounds.BADepth(0.2, 1<<16)) * (CostBisect + CostSend)
	if m16.Makespan > limit {
		t.Fatalf("makespan %d exceeds depth-derived limit %d", m16.Makespan, limit)
	}
	if m16.GlobalOps != 0 || m16.ManagerMessages != 0 {
		t.Fatal("BA must need no global communication and no manager traffic")
	}
	if m16.Messages != int64(m16.Parts-1) {
		t.Fatalf("messages=%d, want parts-1=%d", m16.Messages, m16.Parts-1)
	}
}

func TestRunBAMatchesCoreRatio(t *testing.T) {
	p := bisect.MustSynthetic(1, 0.1, 0.5, 7)
	m, err := RunBA(p, 512)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.BA(bisect.MustSynthetic(1, 0.1, 0.5, 7), 512, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Ratio != res.Ratio {
		t.Fatalf("machine ratio %v != core ratio %v", m.Ratio, res.Ratio)
	}
	if m.Parts != len(res.Parts) {
		t.Fatalf("parts %d != %d", m.Parts, len(res.Parts))
	}
}

func TestRunBAHF(t *testing.T) {
	p := bisect.MustSynthetic(1, 0.1, 0.5, 3)
	m, err := RunBAHF(p, 1024, 0.1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.BAHF(bisect.MustSynthetic(1, 0.1, 0.5, 3), 1024, 0.1, 1.0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Ratio != res.Ratio {
		t.Fatalf("machine ratio %v != core ratio %v", m.Ratio, res.Ratio)
	}
	if m.Bisections != int64(res.Bisections) {
		t.Fatalf("bisections %d != %d", m.Bisections, res.Bisections)
	}
	// The sequential tail makes BA-HF slower than BA but it must stay
	// logarithmic for fixed α and κ.
	ba, err := RunBA(bisect.MustSynthetic(1, 0.1, 0.5, 3), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if m.Makespan < ba.Makespan {
		t.Fatalf("BA-HF makespan %d below BA's %d", m.Makespan, ba.Makespan)
	}
}

func TestRunBAHFLogarithmic(t *testing.T) {
	p := bisect.MustSynthetic(1, 0.2, 0.5, 5)
	m12, err := RunBAHF(p, 1<<12, 0.2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	m17, err := RunBAHF(p, 1<<17, 0.2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if growth := float64(m17.Makespan) / float64(m12.Makespan); growth > 3 {
		t.Fatalf("BA-HF makespan grew %vx — not logarithmic", growth)
	}
}

func TestRunPHFAllModesSamePartitionQuality(t *testing.T) {
	for _, mode := range []Phase1Mode{Phase1Oracle, Phase1Central, Phase1BAPrime} {
		m, err := RunPHF(bisect.MustSynthetic(1, 0.15, 0.5, 11), 512, 0.15, mode)
		if err != nil {
			t.Fatal(err)
		}
		hf, err := core.HF(bisect.MustSynthetic(1, 0.15, 0.5, 11), 512, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Ratio != hf.Ratio {
			t.Fatalf("mode %v: ratio %v != HF ratio %v (Theorem 3 violated)", mode, m.Ratio, hf.Ratio)
		}
		if m.Parts != len(hf.Parts) {
			t.Fatalf("mode %v: parts %d != %d", mode, m.Parts, len(hf.Parts))
		}
		if m.Bisections != int64(hf.Bisections) {
			t.Fatalf("mode %v: bisections %d != %d", mode, m.Bisections, hf.Bisections)
		}
	}
}

func TestRunPHFOracleLogarithmic(t *testing.T) {
	p := bisect.MustSynthetic(1, 0.2, 0.5, 13)
	m10, err := RunPHF(p, 1<<10, 0.2, Phase1Oracle)
	if err != nil {
		t.Fatal(err)
	}
	m16, err := RunPHF(p, 1<<16, 0.2, Phase1Oracle)
	if err != nil {
		t.Fatal(err)
	}
	if growth := float64(m16.Makespan) / float64(m10.Makespan); growth > 3 {
		t.Fatalf("PHF/oracle makespan grew %vx — not logarithmic", growth)
	}
}

func TestRunPHFCentralContention(t *testing.T) {
	// The central manager serialises phase-1 acquisitions; with many
	// processors its makespan must exceed the oracle's noticeably, and its
	// manager traffic is two messages per phase-1 bisection.
	p := bisect.MustSynthetic(1, 0.2, 0.5, 17)
	oracle, err := RunPHF(p, 1<<14, 0.2, Phase1Oracle)
	if err != nil {
		t.Fatal(err)
	}
	central, err := RunPHF(p, 1<<14, 0.2, Phase1Central)
	if err != nil {
		t.Fatal(err)
	}
	if central.Makespan <= oracle.Makespan {
		t.Fatalf("central %d not slower than oracle %d", central.Makespan, oracle.Makespan)
	}
	if central.ManagerMessages == 0 {
		t.Fatal("central manager reported no traffic")
	}
	if oracle.ManagerMessages != 0 {
		t.Fatal("oracle charged manager traffic")
	}
}

func TestRunPHFBAPrimeAvoidsManagerTraffic(t *testing.T) {
	p := bisect.MustSynthetic(1, 0.2, 0.5, 19)
	m, err := RunPHF(p, 1<<12, 0.2, Phase1BAPrime)
	if err != nil {
		t.Fatal(err)
	}
	if m.ManagerMessages != 0 {
		t.Fatalf("BA′ bootstrap charged %d manager messages", m.ManagerMessages)
	}
	central, err := RunPHF(p, 1<<12, 0.2, Phase1Central)
	if err != nil {
		t.Fatal(err)
	}
	if m.Makespan >= central.Makespan {
		t.Fatalf("BA′ bootstrap (%d) not faster than central manager (%d)",
			m.Makespan, central.Makespan)
	}
}

func TestRunPHFPhase2IterationBound(t *testing.T) {
	alpha := 0.1
	m, err := RunPHF(bisect.MustSynthetic(1, alpha, 0.5, 23), 4096, alpha, Phase1Oracle)
	if err != nil {
		t.Fatal(err)
	}
	if limit := bounds.PHFPhase2Iterations(alpha) + 1; m.Phase2Iterations > limit {
		t.Fatalf("phase-2 iterations %d exceed bound %d", m.Phase2Iterations, limit)
	}
}

func TestRunnersErrors(t *testing.T) {
	p := bisect.MustSynthetic(1, 0.1, 0.5, 1)
	if _, err := RunHF(nil, 4); err == nil {
		t.Fatal("RunHF nil accepted")
	}
	if _, err := RunBA(p, 0); err == nil {
		t.Fatal("RunBA n=0 accepted")
	}
	if _, err := RunBAHF(p, 4, 0, 1); err == nil {
		t.Fatal("RunBAHF α=0 accepted")
	}
	if _, err := RunBAHF(p, 4, 0.1, 0); err == nil {
		t.Fatal("RunBAHF κ=0 accepted")
	}
	if _, err := RunPHF(p, 4, 0.8, Phase1Oracle); err == nil {
		t.Fatal("RunPHF bad α accepted")
	}
	if _, err := RunPHF(p, 4, 0.1, Phase1Mode(99)); err == nil {
		t.Fatal("RunPHF unknown mode accepted")
	}
}

func TestPhase1ModeString(t *testing.T) {
	if Phase1Oracle.String() != "oracle" || Phase1Central.String() != "central" ||
		Phase1BAPrime.String() != "ba-prime" {
		t.Fatal("mode names wrong")
	}
	if Phase1Mode(42).String() == "" {
		t.Fatal("unknown mode has empty name")
	}
}

func TestTopologyRunnersCompleteMatchesIdeal(t *testing.T) {
	// On the complete graph (unit distances, ⌈log2 N⌉ collectives) the
	// topology-aware runners must coincide with the idealised ones.
	p := func() bisect.Problem { return bisect.MustSynthetic(1, 0.15, 0.5, 31) }
	ideal, err := RunBA(p(), 512)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := RunBAOnTopology(p(), topology.NewComplete(512))
	if err != nil {
		t.Fatal(err)
	}
	if ideal.Makespan != topo.Makespan || ideal.Messages != topo.Messages {
		t.Fatalf("BA@complete differs from ideal: %d/%d vs %d/%d",
			topo.Makespan, topo.Messages, ideal.Makespan, ideal.Messages)
	}
	idealPHF, err := RunPHF(p(), 512, 0.15, Phase1Oracle)
	if err != nil {
		t.Fatal(err)
	}
	topoPHF, err := RunPHFOnTopology(p(), topology.NewComplete(512), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if idealPHF.Makespan != topoPHF.Makespan {
		t.Fatalf("PHF@complete makespan %d != ideal %d", topoPHF.Makespan, idealPHF.Makespan)
	}
	if idealPHF.Ratio != topoPHF.Ratio || idealPHF.Bisections != topoPHF.Bisections {
		t.Fatal("PHF@complete partition differs from ideal")
	}
}

func TestTopologySensitivity(t *testing.T) {
	// PHF suffers on collective-hostile topologies; BA's slowdown stays
	// comparatively small thanks to its local sends and zero collectives.
	const n = 1024
	p := func() bisect.Problem { return bisect.MustSynthetic(1, 0.15, 0.5, 37) }
	baComplete, err := RunBAOnTopology(p(), topology.NewComplete(n))
	if err != nil {
		t.Fatal(err)
	}
	baRing, err := RunBAOnTopology(p(), topology.NewRing(n))
	if err != nil {
		t.Fatal(err)
	}
	phfComplete, err := RunPHFOnTopology(p(), topology.NewComplete(n), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	phfRing, err := RunPHFOnTopology(p(), topology.NewRing(n), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	baSlow := float64(baRing.Makespan) / float64(baComplete.Makespan)
	phfSlow := float64(phfRing.Makespan) / float64(phfComplete.Makespan)
	if phfSlow <= baSlow {
		t.Fatalf("expected PHF to suffer more on a ring: PHF %vx vs BA %vx", phfSlow, baSlow)
	}
	// Partition quality is topology-independent.
	if phfRing.Ratio != phfComplete.Ratio || baRing.Ratio != baComplete.Ratio {
		t.Fatal("topology changed the computed partition")
	}
}

func TestTopologyRunnerErrors(t *testing.T) {
	p := bisect.MustSynthetic(1, 0.1, 0.5, 1)
	if _, err := RunBAOnTopology(nil, topology.NewComplete(4)); err == nil {
		t.Fatal("nil problem accepted")
	}
	if _, err := RunBAOnTopology(p, nil); err == nil {
		t.Fatal("nil topology accepted")
	}
	if _, err := RunPHFOnTopology(p, nil, 0.1); err == nil {
		t.Fatal("nil topology accepted")
	}
	if _, err := RunPHFOnTopology(p, topology.NewComplete(4), 0.9); err == nil {
		t.Fatal("bad α accepted")
	}
}
