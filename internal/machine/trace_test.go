package machine

import (
	"strings"
	"testing"

	"bisectlb/internal/bisect"
	"bisectlb/internal/core"
)

func TestRunBATraceMatchesRunBA(t *testing.T) {
	p := bisect.MustSynthetic(1, 0.1, 0.5, 21)
	plain, err := RunBA(bisect.MustSynthetic(1, 0.1, 0.5, 21), 256)
	if err != nil {
		t.Fatal(err)
	}
	m, tr, err := RunBATrace(p, 256)
	if err != nil {
		t.Fatal(err)
	}
	if m.Makespan != plain.Makespan || m.Messages != plain.Messages ||
		m.Bisections != plain.Bisections || m.Ratio != plain.Ratio {
		t.Fatalf("traced metrics differ: %+v vs %+v", m, plain)
	}
	if tr.Makespan != m.Makespan {
		t.Fatal("trace makespan inconsistent")
	}
	// One bisect and one send event per bisection, one recv per message.
	var bis, snd, rcv int64
	for _, e := range tr.Events {
		switch e.Action {
		case ActBisect:
			bis++
		case ActSend:
			snd++
		case ActRecv:
			rcv++
		}
	}
	if bis != m.Bisections || snd != m.Messages || rcv != m.Messages {
		t.Fatalf("event counts bis=%d snd=%d rcv=%d vs metrics %d/%d", bis, snd, rcv, m.Bisections, m.Messages)
	}
}

func TestRunBATraceNoOverlapPerProcessor(t *testing.T) {
	p := bisect.MustSynthetic(1, 0.15, 0.5, 5)
	_, tr, err := RunBATrace(p, 128)
	if err != nil {
		t.Fatal(err)
	}
	// Per processor and per action kind, busy intervals must not overlap:
	// the compute unit bisects one problem at a time and the (asynchronous)
	// send unit transmits one subproblem at a time. A send may overlap the
	// *next* bisection — the model offloads transmissions.
	type key struct {
		proc int
		act  Action
	}
	type span struct{ s, e int64 }
	byKey := map[key][]span{}
	for _, ev := range tr.Events {
		if ev.Duration == 0 {
			continue
		}
		k := key{ev.Proc, ev.Action}
		byKey[k] = append(byKey[k], span{ev.Start, ev.Start + ev.Duration})
	}
	for k, spans := range byKey {
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				a, b := spans[i], spans[j]
				if a.s < b.e && b.s < a.e {
					t.Fatalf("processor %d action %c has overlapping intervals [%d,%d) and [%d,%d)",
						k.proc, k.act, a.s, a.e, b.s, b.e)
				}
			}
		}
	}
}

func TestRunPHFOracleTraceConsistent(t *testing.T) {
	p := bisect.MustSynthetic(1, 0.15, 0.5, 9)
	plain, err := RunPHF(bisect.MustSynthetic(1, 0.15, 0.5, 9), 128, 0.15, Phase1Oracle)
	if err != nil {
		t.Fatal(err)
	}
	m, tr, err := RunPHFOracleTrace(p, 128, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if m.Bisections != plain.Bisections || m.Parts != plain.Parts || m.Ratio != plain.Ratio {
		t.Fatalf("traced PHF differs from RunPHF: %+v vs %+v", m, plain)
	}
	if m.Makespan != plain.Makespan {
		t.Fatalf("traced makespan %d != %d", m.Makespan, plain.Makespan)
	}
	if tr.Makespan != m.Makespan {
		t.Fatal("trace makespan inconsistent")
	}
	hf, err := core.HF(bisect.MustSynthetic(1, 0.15, 0.5, 9), 128, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Ratio != hf.Ratio {
		t.Fatal("traced PHF ratio differs from HF (Theorem 3)")
	}
}

func TestTraceUtilization(t *testing.T) {
	p := bisect.MustSynthetic(1, 0.2, 0.5, 3)
	_, tr, err := RunBATrace(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	u := tr.Utilization()
	if u <= 0 || u > 1 {
		t.Fatalf("utilization %v outside (0, 1]", u)
	}
	busy := tr.BusyTime()
	if len(busy) != 64 {
		t.Fatalf("busy slots = %d", len(busy))
	}
	if busy[0] == 0 {
		t.Fatal("processor 1 recorded no work despite holding the root")
	}
}

func TestRenderGantt(t *testing.T) {
	p := bisect.MustSynthetic(1, 0.2, 0.5, 7)
	_, tr, err := RunBATrace(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := RenderGantt(&b, tr, 16); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{"Gantt", "P1", "B", "utilization"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("gantt missing %q:\n%s", frag, out)
		}
	}
	// Every processor row appears.
	if strings.Count(out, "\nP") != 16 {
		t.Fatalf("expected 16 processor rows:\n%s", out)
	}
}

func TestRenderGanttTruncation(t *testing.T) {
	p := bisect.MustSynthetic(1, 0.2, 0.5, 7)
	_, tr, err := RunBATrace(p, 256)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := RenderGantt(&b, tr, 8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "further processors not shown") {
		t.Fatal("truncation note missing")
	}
	if strings.Count(b.String(), "\nP") != 8 {
		t.Fatal("row cap not applied")
	}
}

func TestRenderGanttScalesLongRuns(t *testing.T) {
	p := bisect.MustSynthetic(1, 0.1, 0.5, 11)
	_, tr, err := RunPHFOracleTrace(p, 1<<12, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := RenderGantt(&b, tr, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "column = ") {
		t.Fatal("scale note missing")
	}
	// No line may exceed ~140 characters (120 columns + prefix).
	for _, line := range strings.Split(b.String(), "\n") {
		if len(line) > 140 {
			t.Fatalf("line too long (%d chars)", len(line))
		}
	}
}

func TestRenderGanttEmptyTrace(t *testing.T) {
	var b strings.Builder
	if err := RenderGantt(&b, nil, 8); err == nil {
		t.Fatal("nil trace accepted")
	}
	if err := RenderGantt(&b, &Trace{}, 8); err == nil {
		t.Fatal("empty trace accepted")
	}
}
