package machine

import (
	"fmt"
	"sort"

	"bisectlb/internal/bisect"
	"bisectlb/internal/bounds"
	"bisectlb/internal/core"
	"bisectlb/internal/topology"
)

// RunBAOnTopology simulates Algorithm BA on a concrete interconnection
// network: transmitting a subproblem from processor i to j costs
// CostSend × Distance(i, j). BA still needs no global operations, and its
// range-based management gives it strong locality — the light child of a
// range [base, base+k) travels to base+n1, which is nearby in index space
// and therefore cheap on meshes and rings.
func RunBAOnTopology(p bisect.Problem, topo topology.Topology) (*Metrics, error) {
	if err := bisect.ValidateRoot(p); err != nil {
		return nil, err
	}
	if topo == nil {
		return nil, fmt.Errorf("machine: nil topology")
	}
	n := topo.N()
	m := &Metrics{Algorithm: "BA@" + topo.Name(), N: n}
	var maxW float64
	var makespan int64
	var recurse func(q bisect.Problem, base, procs int, t int64)
	recurse = func(q bisect.Problem, base, procs int, t int64) {
		if procs == 1 || !q.CanBisect() {
			if t > makespan {
				makespan = t
			}
			if w := q.Weight(); w > maxW {
				maxW = w
			}
			m.Parts++
			return
		}
		c1, c2 := q.Bisect()
		m.Bisections++
		if c1.Weight() < c2.Weight() {
			c1, c2 = c2, c1
		}
		n1, n2 := core.SplitProcs(c1.Weight(), c2.Weight(), procs)
		t += CostBisect
		recurse(c1, base, n1, t)
		m.Messages++
		hop := CostSend * topo.Distance(base, base+n1)
		recurse(c2, base+n1, n2, t+hop)
	}
	recurse(p, 0, n, 0)
	m.Makespan = makespan
	m.Ratio = bisect.Ratio(maxW, p.Weight(), n)
	return m, nil
}

// RunPHFOnTopology simulates Algorithm PHF (oracle free-processor
// management) on a concrete network: phase-one transmissions pay the
// distance from the bisecting processor to the assigned free processor
// (handed out in acquisition order), and every global operation costs the
// topology's CollectiveCost instead of the idealised ⌈log2 N⌉. On meshes
// and rings the collective-heavy structure of PHF pays Θ(√N) or Θ(N) per
// phase-two iteration, which is exactly the machine-characteristics caveat
// of the paper's conclusion.
func RunPHFOnTopology(p bisect.Problem, topo topology.Topology, alpha float64) (*Metrics, error) {
	if err := bisect.ValidateRoot(p); err != nil {
		return nil, err
	}
	if topo == nil {
		return nil, fmt.Errorf("machine: nil topology")
	}
	if err := bounds.ValidateAlpha(alpha); err != nil {
		return nil, err
	}
	n := topo.N()
	total := p.Weight()
	threshold := bounds.HFThreshold(total, alpha, n)
	coll := topo.CollectiveCost()
	m := &Metrics{Algorithm: "PHF@" + topo.Name(), N: n}

	type holder struct {
		q     bisect.Problem
		proc  int
		depth int
	}
	var parts []holder
	nextFree := 1
	var phase1End int64
	eng := &engine{}
	var handle func(q bisect.Problem, proc, depth int, t int64)
	handle = func(q bisect.Problem, proc, depth int, t int64) {
		if q.Weight() <= threshold || !q.CanBisect() {
			parts = append(parts, holder{q, proc, depth})
			if t > phase1End {
				phase1End = t
			}
			return
		}
		eng.at(t+CostBisect, func() {
			tb := t + CostBisect
			c1, c2 := q.Bisect()
			m.Bisections++
			handle(c1, proc, depth+1, tb)
			dest := nextFree
			nextFree++
			m.Messages++
			arrival := tb + CostSend*topo.Distance(proc, dest)
			if arrival == tb {
				arrival++ // self-delivery still takes a unit in the model
			}
			eng.at(arrival, func() { handle(c2, dest, depth+1, arrival) })
		})
	}
	handle(p, 0, 0, 0)
	end := eng.run()
	if end > phase1End {
		phase1End = end
	}
	m.GlobalOps += 2
	m.GlobalTime += 2 * coll
	phase1End += 2 * coll
	m.Phase1Time = phase1End

	var phase2 int64
	f := n - len(parts)
	for f > 0 {
		maxW := 0.0
		for _, h := range parts {
			if w := h.q.Weight(); w > maxW {
				maxW = w
			}
		}
		cut := maxW * (1 - alpha)
		var heavy []int
		for i, h := range parts {
			if h.q.Weight() >= cut && h.q.CanBisect() {
				heavy = append(heavy, i)
			}
		}
		m.GlobalOps += 2
		m.GlobalTime += 2 * coll
		phase2 += 2 * coll
		if len(heavy) == 0 {
			break
		}
		if len(heavy) > f {
			sort.Slice(heavy, func(a, b int) bool {
				pa, pb := parts[heavy[a]].q, parts[heavy[b]].q
				if pa.Weight() != pb.Weight() {
					return pa.Weight() > pb.Weight()
				}
				return pa.ID() < pb.ID()
			})
			heavy = heavy[:f]
			m.GlobalOps++
			m.GlobalTime += coll
			phase2 += coll
		}
		// The slowest transmission of the iteration gates the barrier.
		var maxHop int64 = 1
		for _, i := range heavy {
			h := parts[i]
			c1, c2 := h.q.Bisect()
			m.Bisections++
			m.Messages++
			dest := nextFree
			nextFree++
			if hop := topo.Distance(h.proc, dest); hop > maxHop {
				maxHop = hop
			}
			parts[i] = holder{c1, h.proc, h.depth + 1}
			parts = append(parts, holder{c2, dest, h.depth + 1})
		}
		phase2 += CostBisect + CostSend*maxHop
		f -= len(heavy)
		m.Phase2Iterations++
		if f > 0 {
			m.GlobalOps++
			m.GlobalTime += coll
			phase2 += coll
		}
	}
	m.Phase2Time = phase2
	m.Makespan = m.Phase1Time + m.Phase2Time
	m.Parts = len(parts)
	maxW := 0.0
	for _, h := range parts {
		if w := h.q.Weight(); w > maxW {
			maxW = w
		}
	}
	m.Ratio = bisect.Ratio(maxW, total, n)
	return m, nil
}
