// Package machine simulates the parallel machine model of the paper and
// executes the load-balancing algorithms on it, reporting running time in
// model units, point-to-point message counts and global-communication
// counts.
//
// The cost model (paper, Section 3): bisecting a problem takes one unit of
// time; transmitting a subproblem to a free processor takes one unit of
// time; standard global operations (maximum, prefix computation, sorting or
// selection, barrier) take ⌈log2 N⌉ units, per the PRAM-style assumption
// "which can be simulated on many realistic architectures with at most
// logarithmic slowdown".
package machine

// Model costs in time units.
const (
	// CostBisect is the time to bisect a problem into two subproblems.
	CostBisect int64 = 1
	// CostSend is the time to transmit a subproblem to another processor.
	CostSend int64 = 1
)

// event is a scheduled simulator callback. Events with equal times fire in
// schedule order (seq), which keeps runs deterministic.
type event struct {
	t   int64
	seq int64
	fn  func()
}

// engine is a discrete-event simulation core: a time-ordered event queue.
type engine struct {
	heap []event
	seq  int64
	now  int64
}

// at schedules fn to run at absolute time t. Scheduling in the past (before
// the currently executing event) panics: it would mean the simulated
// algorithm violated causality.
func (e *engine) at(t int64, fn func()) {
	if t < e.now {
		panic("machine: event scheduled in the past")
	}
	e.seq++
	e.heap = append(e.heap, event{t: t, seq: e.seq, fn: fn})
	e.up(len(e.heap) - 1)
}

// run processes events in time order until the queue drains and returns the
// time of the last event.
func (e *engine) run() int64 {
	for len(e.heap) > 0 {
		ev := e.pop()
		e.now = ev.t
		ev.fn()
	}
	return e.now
}

func (e *engine) less(i, j int) bool {
	a, b := e.heap[i], e.heap[j]
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

func (e *engine) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			return
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

func (e *engine) pop() event {
	top := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap = e.heap[:last]
	n := len(e.heap)
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		best := left
		if right := left + 1; right < n && e.less(right, left) {
			best = right
		}
		if !e.less(best, i) {
			break
		}
		e.heap[i], e.heap[best] = e.heap[best], e.heap[i]
		i = best
	}
	return top
}
