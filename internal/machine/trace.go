package machine

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"bisectlb/internal/bisect"
	"bisectlb/internal/bounds"
	"bisectlb/internal/core"
)

// Action identifies what a processor does during a traced interval.
type Action byte

const (
	// ActBisect is one bisection step (CostBisect units).
	ActBisect Action = 'B'
	// ActSend is the transmission of a subproblem (CostSend units,
	// attributed to the sender).
	ActSend Action = '>'
	// ActRecv marks the arrival of a subproblem at a processor.
	ActRecv Action = 'v'
	// ActCollective marks participation in a global operation.
	ActCollective Action = 'G'
)

// TraceEvent is one scheduled interval on one processor.
type TraceEvent struct {
	Proc     int
	Start    int64
	Duration int64
	Action   Action
	// Weight is the subproblem weight involved (0 for collectives).
	Weight float64
}

// Trace is the full schedule of a simulated run.
type Trace struct {
	N        int
	Makespan int64
	Events   []TraceEvent
}

// BusyTime returns the total busy units of each processor.
func (t *Trace) BusyTime() []int64 {
	busy := make([]int64, t.N)
	for _, e := range t.Events {
		if e.Proc >= 0 && e.Proc < t.N {
			busy[e.Proc] += e.Duration
		}
	}
	return busy
}

// Utilization returns aggregate busy time over N×makespan.
func (t *Trace) Utilization() float64 {
	if t.Makespan == 0 || t.N == 0 {
		return 0
	}
	var sum int64
	for _, b := range t.BusyTime() {
		sum += b
	}
	return float64(sum) / float64(t.N) / float64(t.Makespan)
}

// RunBATrace simulates Algorithm BA like RunBA and additionally returns the
// full per-processor schedule. Processor attribution follows the paper's
// range-based management: a subproblem with processor range [base,
// base+procs) is handled by processor base.
func RunBATrace(p bisect.Problem, n int) (*Metrics, *Trace, error) {
	if err := bisect.ValidateRoot(p); err != nil {
		return nil, nil, err
	}
	if n < 1 {
		return nil, nil, fmt.Errorf("machine: processor count must be ≥ 1, got %d", n)
	}
	m := &Metrics{Algorithm: "BA", N: n}
	tr := &Trace{N: n}
	var maxW float64
	var recurse func(q bisect.Problem, base, procs int, t int64)
	recurse = func(q bisect.Problem, base, procs int, t int64) {
		if procs == 1 || !q.CanBisect() {
			if t > tr.Makespan {
				tr.Makespan = t
			}
			if w := q.Weight(); w > maxW {
				maxW = w
			}
			m.Parts++
			return
		}
		c1, c2 := q.Bisect()
		m.Bisections++
		if c1.Weight() < c2.Weight() {
			c1, c2 = c2, c1
		}
		n1, n2 := core.SplitProcs(c1.Weight(), c2.Weight(), procs)
		tr.Events = append(tr.Events, TraceEvent{
			Proc: base, Start: t, Duration: CostBisect, Action: ActBisect, Weight: q.Weight(),
		})
		t += CostBisect
		tr.Events = append(tr.Events, TraceEvent{
			Proc: base, Start: t, Duration: CostSend, Action: ActSend, Weight: c2.Weight(),
		})
		tr.Events = append(tr.Events, TraceEvent{
			Proc: base + n1, Start: t + CostSend, Duration: 0, Action: ActRecv, Weight: c2.Weight(),
		})
		m.Messages++
		recurse(c1, base, n1, t)
		recurse(c2, base+n1, n2, t+CostSend)
	}
	recurse(p, 0, n, 0)
	m.Makespan = tr.Makespan
	m.Ratio = bisect.Ratio(maxW, p.Weight(), n)
	return m, tr, nil
}

// RunPHFOracleTrace simulates PHF phase one under the oracle manager and
// returns the per-processor schedule of the whole run. Free processors are
// assigned in acquisition order, matching how the numbered free-processor
// scheme of Section 3.1 hands out ids. Phase two appears as collective
// blocks on all processors plus the bisection work of the selected ones.
func RunPHFOracleTrace(p bisect.Problem, n int, alpha float64) (*Metrics, *Trace, error) {
	if err := bisect.ValidateRoot(p); err != nil {
		return nil, nil, err
	}
	if n < 1 {
		return nil, nil, fmt.Errorf("machine: processor count must be ≥ 1, got %d", n)
	}
	if err := bounds.ValidateAlpha(alpha); err != nil {
		return nil, nil, err
	}
	total := p.Weight()
	threshold := bounds.HFThreshold(total, alpha, n)
	logN := bounds.CollectiveCost(n)
	m := &Metrics{Algorithm: "PHF/oracle", N: n}
	tr := &Trace{N: n}

	type holder struct {
		q     bisect.Problem
		proc  int
		depth int
	}
	var parts []holder
	nextFree := 1 // processor 0 holds the root
	var phase1End int64
	eng := &engine{}
	var handle func(q bisect.Problem, proc, depth int, t int64)
	handle = func(q bisect.Problem, proc, depth int, t int64) {
		if q.Weight() <= threshold || !q.CanBisect() {
			parts = append(parts, holder{q, proc, depth})
			if t > phase1End {
				phase1End = t
			}
			if depth > m.Phase1Rounds {
				m.Phase1Rounds = depth
			}
			return
		}
		eng.at(t+CostBisect, func() {
			tb := t + CostBisect
			c1, c2 := q.Bisect()
			m.Bisections++
			tr.Events = append(tr.Events, TraceEvent{
				Proc: proc, Start: t, Duration: CostBisect, Action: ActBisect, Weight: q.Weight(),
			})
			handle(c1, proc, depth+1, tb)
			dest := nextFree
			nextFree++
			m.Messages++
			tr.Events = append(tr.Events, TraceEvent{
				Proc: proc, Start: tb, Duration: CostSend, Action: ActSend, Weight: c2.Weight(),
			})
			arrival := tb + CostSend
			tr.Events = append(tr.Events, TraceEvent{
				Proc: dest, Start: arrival, Duration: 0, Action: ActRecv, Weight: c2.Weight(),
			})
			eng.at(arrival, func() { handle(c2, dest, depth+1, arrival) })
		})
	}
	handle(p, 0, 0, 0)
	end := eng.run()
	if end > phase1End {
		phase1End = end
	}

	// Barrier + free-processor numbering: all processors participate.
	collective := func(t int64) int64 {
		for proc := 0; proc < n; proc++ {
			tr.Events = append(tr.Events, TraceEvent{
				Proc: proc, Start: t, Duration: logN, Action: ActCollective,
			})
		}
		m.GlobalOps++
		m.GlobalTime += logN
		return t + logN
	}
	now := collective(phase1End)
	now = collective(now)
	m.Phase1Time = now

	// Phase two, with processor attribution.
	f := n - len(parts)
	for f > 0 {
		maxWt := 0.0
		for _, h := range parts {
			if w := h.q.Weight(); w > maxWt {
				maxWt = w
			}
		}
		cut := maxWt * (1 - alpha)
		var heavy []int
		for i, h := range parts {
			if h.q.Weight() >= cut && h.q.CanBisect() {
				heavy = append(heavy, i)
			}
		}
		now = collective(now)
		now = collective(now)
		if len(heavy) == 0 {
			break
		}
		if len(heavy) > f {
			sort.Slice(heavy, func(a, b int) bool {
				pa, pb := parts[heavy[a]].q, parts[heavy[b]].q
				if pa.Weight() != pb.Weight() {
					return pa.Weight() > pb.Weight()
				}
				return pa.ID() < pb.ID()
			})
			heavy = heavy[:f]
			now = collective(now)
		}
		for _, i := range heavy {
			h := parts[i]
			c1, c2 := h.q.Bisect()
			m.Bisections++
			m.Messages++
			dest := nextFree
			nextFree++
			tr.Events = append(tr.Events,
				TraceEvent{Proc: h.proc, Start: now, Duration: CostBisect, Action: ActBisect, Weight: h.q.Weight()},
				TraceEvent{Proc: h.proc, Start: now + CostBisect, Duration: CostSend, Action: ActSend, Weight: c2.Weight()},
				TraceEvent{Proc: dest, Start: now + CostBisect + CostSend, Duration: 0, Action: ActRecv, Weight: c2.Weight()},
			)
			parts[i] = holder{c1, h.proc, h.depth + 1}
			parts = append(parts, holder{c2, dest, h.depth + 1})
		}
		now += CostBisect + CostSend
		f -= len(heavy)
		m.Phase2Iterations++
		if f > 0 {
			now = collective(now)
		}
	}
	m.Phase2Time = now - m.Phase1Time
	m.Makespan = now
	tr.Makespan = now
	m.Parts = len(parts)
	maxWt := 0.0
	for _, h := range parts {
		if w := h.q.Weight(); w > maxWt {
			maxWt = w
		}
	}
	m.Ratio = bisect.Ratio(maxWt, total, n)
	return m, tr, nil
}

// RenderGantt draws the trace as a per-processor timeline: B = bisecting,
// > = sending, v = receiving, G = global operation, · = idle. At most
// maxProcs rows are shown (the busiest first if truncated).
func RenderGantt(w io.Writer, tr *Trace, maxProcs int) error {
	if tr == nil || tr.N == 0 {
		return fmt.Errorf("machine: empty trace")
	}
	if maxProcs < 1 {
		maxProcs = 16
	}
	span := tr.Makespan
	if span == 0 {
		span = 1
	}
	// Unit resolution: one column per time unit (plus one so zero-width
	// arrival markers at the makespan stay visible), capped at 120 columns.
	cols := int(span) + 1
	scale := int64(1)
	for cols > 120 {
		scale *= 2
		cols = int((span + scale - 1) / scale)
	}
	procs := tr.N
	truncated := false
	order := make([]int, tr.N)
	for i := range order {
		order[i] = i
	}
	if procs > maxProcs {
		busy := tr.BusyTime()
		sort.Slice(order, func(a, b int) bool {
			if busy[order[a]] != busy[order[b]] {
				return busy[order[a]] > busy[order[b]]
			}
			return order[a] < order[b]
		})
		order = order[:maxProcs]
		sort.Ints(order)
		procs = maxProcs
		truncated = true
	}
	rows := make(map[int][]byte, procs)
	for _, p := range order {
		rows[p] = []byte(strings.Repeat(".", cols))
	}
	for _, e := range tr.Events {
		row, ok := rows[e.Proc]
		if !ok {
			continue
		}
		from := int(e.Start / scale)
		to := int((e.Start + e.Duration + scale - 1) / scale)
		if to <= from {
			to = from + 1
		}
		for c := from; c < to && c < cols; c++ {
			// Receives are zero-width markers; never overwrite real work.
			if e.Action == ActRecv && rowHasWork(row[c]) {
				continue
			}
			row[c] = byte(e.Action)
		}
	}
	fmt.Fprintf(w, "Gantt: %d processors, makespan %d units (1 column = %d unit(s))\n",
		tr.N, tr.Makespan, scale)
	fmt.Fprintf(w, "B=bisect  >=send  v=recv  G=global op  .=idle\n\n")
	for _, p := range order {
		fmt.Fprintf(w, "P%-5d |%s\n", p+1, string(rows[p]))
	}
	if truncated {
		fmt.Fprintf(w, "… (%d further processors not shown)\n", tr.N-procs)
	}
	fmt.Fprintf(w, "\nutilization: %.1f%%\n", 100*tr.Utilization())
	return nil
}

func rowHasWork(b byte) bool {
	return b == byte(ActBisect) || b == byte(ActSend) || b == byte(ActCollective)
}
