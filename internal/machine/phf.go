package machine

import (
	"fmt"
	"sort"

	"bisectlb/internal/bisect"
	"bisectlb/internal/bounds"
	"bisectlb/internal/core"
)

// oracle/central free-processor acquisition during PHF phase one.

// centralServer models processor P1 serving free-processor requests one per
// time unit, FIFO in request order. Requests cost one unit to reach P1 and
// the reply one unit to return, so an uncontended acquire costs 3 units; a
// burst of k simultaneous requests serialises and the last waits k+2.
type centralServer struct {
	freeAt int64 // time at which P1 can serve the next request
	m      *Metrics
}

func (s *centralServer) acquire(t int64) int64 {
	s.m.ManagerMessages += 2
	start := t + CostSend
	if start < s.freeAt {
		start = s.freeAt
	}
	s.freeAt = start + 1
	return s.freeAt + CostSend
}

// RunPHF simulates Algorithm PHF on the machine model with the selected
// phase-one free-processor management. All modes perform exactly the same
// bisections and deliver HF's partition (Theorem 3); they differ in timing
// and management traffic:
//
//   - Phase1Oracle charges nothing for acquiring free processors (the
//     idealised assumption under which Theorem 3's O(log N) holds).
//   - Phase1Central serialises acquisitions through P1 and exposes the
//     contention the paper warns about.
//   - Phase1BAPrime uses Algorithm BA′ with range-based management plus a
//     constant number of synchronous sweep rounds (Section 3.4), the
//     paper's remedy.
func RunPHF(p bisect.Problem, n int, alpha float64, mode Phase1Mode) (*Metrics, error) {
	if err := bisect.ValidateRoot(p); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("machine: processor count must be ≥ 1, got %d", n)
	}
	if err := bounds.ValidateAlpha(alpha); err != nil {
		return nil, err
	}
	total := p.Weight()
	threshold := bounds.HFThreshold(total, alpha, n)
	logN := bounds.CollectiveCost(n)
	m := &Metrics{Algorithm: "PHF/" + mode.String(), N: n}

	var parts []wnode
	var phase1End int64

	switch mode {
	case Phase1Oracle, Phase1Central:
		eng := &engine{}
		server := &centralServer{m: m}
		acquire := func(t int64) int64 {
			if mode == Phase1Oracle {
				return t
			}
			return server.acquire(t)
		}
		var handle func(q bisect.Problem, depth int, t int64)
		handle = func(q bisect.Problem, depth int, t int64) {
			if q.Weight() <= threshold || !q.CanBisect() {
				parts = append(parts, wnode{q, depth})
				if t > phase1End {
					phase1End = t
				}
				if depth > m.Phase1Rounds {
					m.Phase1Rounds = depth
				}
				return
			}
			eng.at(t+CostBisect, func() {
				tb := t + CostBisect
				c1, c2 := q.Bisect()
				m.Bisections++
				// The bisecting processor keeps q1 and continues at once;
				// q2 travels to a free processor as soon as its id is known.
				handle(c1, depth+1, tb)
				ready := acquire(tb)
				m.Messages++
				arrival := ready + CostSend
				eng.at(arrival, func() { handle(c2, depth+1, arrival) })
			})
		}
		handle(p, 0, 0)
		end := eng.run()
		if end > phase1End {
			phase1End = end
		}

	case Phase1BAPrime:
		// Part one: Algorithm BA′ with range-based management (no manager
		// traffic at all). The recursion's completion times are exact.
		var recurse func(q bisect.Problem, procs, depth int, t int64)
		recurse = func(q bisect.Problem, procs, depth int, t int64) {
			if procs == 1 || q.Weight() <= threshold || !q.CanBisect() {
				parts = append(parts, wnode{q, depth})
				if t > phase1End {
					phase1End = t
				}
				return
			}
			c1, c2 := q.Bisect()
			m.Bisections++
			if c1.Weight() < c2.Weight() {
				c1, c2 = c2, c1
			}
			n1, n2 := core.SplitProcs(c1.Weight(), c2.Weight(), procs)
			t += CostBisect
			recurse(c1, n1, depth+1, t)
			m.Messages++
			recurse(c2, n2, depth+1, t+CostSend)
		}
		recurse(p, n, 0, 0)

		// Free processors are determined and numbered once (O(log N)).
		m.GlobalOps++
		m.GlobalTime += logN
		phase1End += logN

		// Part two: synchronous sweeps bisecting everything still above the
		// threshold — a constant number of iterations for fixed α, since
		// each sweep shrinks the maximum remaining weight by (1−α).
		for {
			var heavy []int
			for i, nd := range parts {
				if nd.p.Weight() > threshold && nd.p.CanBisect() {
					heavy = append(heavy, i)
				}
			}
			if len(heavy) == 0 {
				break
			}
			for _, i := range heavy {
				nd := parts[i]
				c1, c2 := nd.p.Bisect()
				m.Bisections++
				m.Messages++
				parts[i] = wnode{c1, nd.depth + 1}
				parts = append(parts, wnode{c2, nd.depth + 1})
			}
			m.Phase1Rounds++
			phase1End += CostBisect + CostSend
			m.GlobalOps++ // barrier between sweeps
			m.GlobalTime += logN
			phase1End += logN
		}

	default:
		return nil, fmt.Errorf("machine: unknown phase-1 mode %v", mode)
	}

	// Barrier (step (b)) and free-processor numbering (step (c)).
	m.GlobalOps += 2
	m.GlobalTime += 2 * logN
	phase1End += 2 * logN
	m.Phase1Time = phase1End

	// Phase two, identical across modes.
	var phase2 int64
	f := n - len(parts)
	for f > 0 {
		maxW := 0.0
		for _, nd := range parts {
			if w := nd.p.Weight(); w > maxW {
				maxW = w
			}
		}
		cut := maxW * (1 - alpha)
		var heavy []int
		for i, nd := range parts {
			if nd.p.Weight() >= cut && nd.p.CanBisect() {
				heavy = append(heavy, i)
			}
		}
		m.GlobalOps += 2 // steps (d) and (e)
		m.GlobalTime += 2 * logN
		phase2 += 2 * logN
		if len(heavy) == 0 {
			break
		}
		if len(heavy) > f {
			// Step (3b): parallel selection of the f heaviest subproblems.
			sort.Slice(heavy, func(a, b int) bool {
				pa, pb := parts[heavy[a]].p, parts[heavy[b]].p
				if pa.Weight() != pb.Weight() {
					return pa.Weight() > pb.Weight()
				}
				return pa.ID() < pb.ID()
			})
			heavy = heavy[:f]
			m.GlobalOps++
			m.GlobalTime += logN
			phase2 += logN
		}
		for _, i := range heavy {
			nd := parts[i]
			c1, c2 := nd.p.Bisect()
			m.Bisections++
			m.Messages++
			parts[i] = wnode{c1, nd.depth + 1}
			parts = append(parts, wnode{c2, nd.depth + 1})
		}
		phase2 += CostBisect + CostSend
		f -= len(heavy)
		m.Phase2Iterations++
		if f > 0 {
			m.GlobalOps++ // step (h): barrier
			m.GlobalTime += logN
			phase2 += logN
		}
	}
	m.Phase2Time = phase2
	m.Makespan = m.Phase1Time + m.Phase2Time
	m.Parts = len(parts)
	maxW := 0.0
	for _, nd := range parts {
		if w := nd.p.Weight(); w > maxW {
			maxW = w
		}
	}
	m.Ratio = bisect.Ratio(maxW, total, n)
	return m, nil
}
