package machine

import (
	"fmt"

	"bisectlb/internal/bisect"
	"bisectlb/internal/bounds"
	"bisectlb/internal/core"
)

// Phase1Mode selects how Algorithm PHF manages free processors during its
// first phase (paper, Section 3.4).
type Phase1Mode int

const (
	// Phase1Oracle assumes a processor "can quickly (in constant time)
	// acquire the number of a free processor" — the idealised assumption
	// of Section 3. No management traffic is charged.
	Phase1Oracle Phase1Mode = iota
	// Phase1Central routes every free-processor request through processor
	// P1, which serves one request per time unit. This is the naive
	// realisation whose contention the paper warns about ("it must be
	// expected that substantial communication overhead will occur").
	Phase1Central
	// Phase1BAPrime bootstraps phase one with Algorithm BA′ and its
	// zero-overhead range-based management, followed by a constant number
	// of synchronous sweep iterations — the paper's proposed solution.
	Phase1BAPrime
)

// String names the mode for reports.
func (m Phase1Mode) String() string {
	switch m {
	case Phase1Oracle:
		return "oracle"
	case Phase1Central:
		return "central"
	case Phase1BAPrime:
		return "ba-prime"
	default:
		return fmt.Sprintf("Phase1Mode(%d)", int(m))
	}
}

// Metrics reports one simulated run.
type Metrics struct {
	Algorithm string
	N         int
	// Makespan is the completion time of the load balancing in model units.
	Makespan int64
	// Messages counts subproblem transmissions between processors.
	Messages int64
	// ManagerMessages counts free-processor-management traffic (requests
	// and replies); zero under range-based management.
	ManagerMessages int64
	// GlobalOps counts global communication operations; GlobalTime is the
	// model time they consumed (⌈log2 N⌉ each).
	GlobalOps  int64
	GlobalTime int64
	// Bisections counts bisection steps.
	Bisections int64
	// Phase accounting (PHF only; zero otherwise).
	Phase1Time       int64
	Phase2Time       int64
	Phase1Rounds     int
	Phase2Iterations int
	// Parts and Ratio describe the computed partition.
	Parts int
	Ratio float64
}

// wnode pairs a problem with completion metadata during simulation.
type wnode struct {
	p     bisect.Problem
	depth int
}

// RunHF simulates the sequential Algorithm HF: processor P1 performs all
// n−1 bisections back to back and then transmits n−1 subproblems, one per
// time unit. Makespan is therefore Θ(n) — the baseline the parallel
// algorithms improve to O(log n).
func RunHF(p bisect.Problem, n int) (*Metrics, error) {
	res, err := core.HF(p, n, core.Options{})
	if err != nil {
		return nil, err
	}
	b := int64(res.Bisections)
	sends := int64(len(res.Parts) - 1)
	return &Metrics{
		Algorithm:  "HF",
		N:          n,
		Makespan:   b*CostBisect + sends*CostSend,
		Messages:   sends,
		Bisections: b,
		Parts:      len(res.Parts),
		Ratio:      res.Ratio,
	}, nil
}

// RunBA simulates Algorithm BA: after each bisection (one unit) the heavy
// child continues on the same processor while the light child is sent (one
// unit) to the first processor of its range — the range-based management of
// Section 3.4, which needs no management traffic at all. Transmission is
// asynchronous: the processor starts its next bisection while the send is
// in flight, so a root-to-leaf path of depth d completes in d·CostBisect
// plus one CostSend per transfer edge. The recursion's completion times are
// computed exactly; makespan is the latest leaf.
func RunBA(p bisect.Problem, n int) (*Metrics, error) {
	if err := bisect.ValidateRoot(p); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("machine: processor count must be ≥ 1, got %d", n)
	}
	m := &Metrics{Algorithm: "BA", N: n}
	var maxW float64
	var makespan int64
	var recurse func(q bisect.Problem, procs int, t int64)
	recurse = func(q bisect.Problem, procs int, t int64) {
		if procs == 1 || !q.CanBisect() {
			if t > makespan {
				makespan = t
			}
			if w := q.Weight(); w > maxW {
				maxW = w
			}
			m.Parts++
			return
		}
		c1, c2 := q.Bisect()
		m.Bisections++
		if c1.Weight() < c2.Weight() {
			c1, c2 = c2, c1
		}
		n1, n2 := core.SplitProcs(c1.Weight(), c2.Weight(), procs)
		t += CostBisect
		recurse(c1, n1, t)
		m.Messages++
		recurse(c2, n2, t+CostSend)
	}
	recurse(p, n, 0)
	m.Makespan = makespan
	m.Ratio = bisect.Ratio(maxW, p.Weight(), n)
	return m, nil
}

// RunBAHF simulates Algorithm BA-HF with the sequential HF as its second
// stage: the BA part behaves as in RunBA; once a subproblem's processor
// count drops below κ/α + 1, its processor performs the remaining
// bisections sequentially and distributes the results within its range.
func RunBAHF(p bisect.Problem, n int, alpha, kappa float64) (*Metrics, error) {
	if err := bisect.ValidateRoot(p); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("machine: processor count must be ≥ 1, got %d", n)
	}
	if err := bounds.ValidateAlpha(alpha); err != nil {
		return nil, err
	}
	if err := bounds.ValidateKappa(kappa); err != nil {
		return nil, err
	}
	m := &Metrics{Algorithm: "BA-HF", N: n}
	cutoff := kappa/alpha + 1
	var maxW float64
	var makespan int64
	bump := func(t int64) {
		if t > makespan {
			makespan = t
		}
	}
	var recurse func(q bisect.Problem, procs int, t int64)
	recurse = func(q bisect.Problem, procs int, t int64) {
		if procs == 1 || !q.CanBisect() {
			bump(t)
			if w := q.Weight(); w > maxW {
				maxW = w
			}
			m.Parts++
			return
		}
		if float64(procs) < cutoff {
			// Sequential HF on this processor's range.
			res, err := core.HF(q, procs, core.Options{})
			if err != nil {
				// Root validation already passed; a failure here indicates a
				// broken Problem implementation mid-tree.
				panic(err)
			}
			b := int64(res.Bisections)
			sends := int64(len(res.Parts) - 1)
			m.Bisections += b
			m.Messages += sends
			m.Parts += len(res.Parts)
			bump(t + b*CostBisect + sends*CostSend)
			if res.Max > maxW {
				maxW = res.Max
			}
			return
		}
		c1, c2 := q.Bisect()
		m.Bisections++
		if c1.Weight() < c2.Weight() {
			c1, c2 = c2, c1
		}
		n1, n2 := core.SplitProcs(c1.Weight(), c2.Weight(), procs)
		t += CostBisect
		recurse(c1, n1, t)
		m.Messages++
		recurse(c2, n2, t+CostSend)
	}
	recurse(p, n, 0)
	m.Makespan = makespan
	m.Ratio = bisect.Ratio(maxW, p.Weight(), n)
	return m, nil
}
