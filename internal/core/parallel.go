package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bisectlb/internal/bisect"
	"bisectlb/internal/bounds"
	"bisectlb/internal/collective"
	"bisectlb/internal/obs"
)

// Metric names recorded by the parallel executors when
// ParallelOptions.Metrics is set.
const (
	mBABisections = "core.ba.bisections"
	mBASpawns     = "core.ba.goroutine_spawns"
	mBAWallNs     = "core.ba.wall_ns"
	mPHFWorkers   = "core.phf.workers"
	mPHFBis1      = "core.phf.phase1_bisections"
	mPHFBis2      = "core.phf.phase2_bisections"
	mPHFPhase1Ns  = "core.phf.phase1_ns"
	mPHFPhase2Ns  = "core.phf.phase2_ns"
)

// ParallelOptions configure the goroutine-parallel executions.
type ParallelOptions struct {
	// Workers is the number of goroutines to use. Zero means GOMAXPROCS.
	// The paper's machine has one processor per subproblem; on a real
	// multicore we multiplex the N logical processors onto Workers
	// goroutines SPMD-style.
	Workers int
	// SpawnThreshold stops ParallelBA from spawning a goroutine for
	// subtrees with fewer processors than this, bounding goroutine count
	// while keeping the recursion tree parallel near the root. Zero means
	// a sensible default (64).
	SpawnThreshold int
	// Metrics, when non-nil, receives the executor's counters and
	// per-phase wall-time histograms (bisections, goroutine spawns, PHF
	// phase 1/2 durations). A nil registry costs one atomic add per
	// instrumented event — the instruments are shared discards.
	Metrics *obs.Registry
}

func (o ParallelOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o ParallelOptions) spawnThreshold() int {
	if o.SpawnThreshold > 0 {
		return o.SpawnThreshold
	}
	return 64
}

// ParallelBA executes Algorithm BA with real goroutine parallelism: the two
// recursive calls after a bisection run concurrently, mirroring the paper's
// observation that "these recursive calls can be executed in parallel on
// different processors". The computed partition is identical to BA's
// (the algorithm is deterministic; only the execution order differs).
//
// Free-processor management is the paper's range scheme (Section 3.4): the
// recursion carries the processor range [base, base+procs), the heavy child
// keeps the low part of the range on the same processor and the light child
// is "sent" to processor base+n1. Each leaf therefore has a unique range
// start, which is used as its slot in the result array — no locks needed.
func ParallelBA(p bisect.Problem, n int, opt ParallelOptions) (*Result, error) {
	if err := validate(p, n); err != nil {
		return nil, err
	}
	total := p.Weight()
	slots := make([]Part, n) // leaf with range [base, …) lands in slots[base]
	filled := make([]bool, n)
	var bisections, spawns atomic.Int64
	spawnMin := opt.spawnThreshold()
	wallStart := time.Now()

	var wg sync.WaitGroup
	var recurse func(q bisect.Problem, base, procs, depth int)
	recurse = func(q bisect.Problem, base, procs, depth int) {
		for {
			if procs == 1 || !q.CanBisect() {
				slots[base] = Part{Problem: q, Procs: procs, Depth: depth}
				filled[base] = true
				return
			}
			c1, c2 := q.Bisect()
			bisections.Add(1)
			if c1.Weight() < c2.Weight() {
				c1, c2 = c2, c1
			}
			n1, n2 := SplitProcs(c1.Weight(), c2.Weight(), procs)
			if procs >= spawnMin {
				wg.Add(1)
				spawns.Add(1)
				go func(q2 bisect.Problem, b, pr, d int) {
					defer wg.Done()
					recurse(q2, b, pr, d)
				}(c2, base+n1, n2, depth+1)
			} else {
				recurse(c2, base+n1, n2, depth+1)
			}
			// Continue with the heavy child on this goroutine (tail call).
			q, procs, depth = c1, n1, depth+1
		}
	}
	wg.Add(1)
	spawns.Add(1)
	go func() {
		defer wg.Done()
		recurse(p, 0, n, 0)
	}()
	wg.Wait()

	opt.Metrics.Counter(mBABisections).Add(bisections.Load())
	opt.Metrics.Counter(mBASpawns).Add(spawns.Load())
	opt.Metrics.Histogram(mBAWallNs).ObserveSince(wallStart)

	parts := make([]Part, 0, n)
	for i, ok := range filled {
		if ok {
			parts = append(parts, slots[i])
		}
	}
	return finalize("BA", parts, n, total, int(bisections.Load()), recorder{}), nil
}

// ParallelPHF executes Algorithm PHF with worker goroutines and the
// collective operations of internal/collective, producing the identical
// partition to PHF (and hence, by Theorem 3, to HF). The N logical
// processors of the model are multiplexed onto Workers goroutines: in each
// synchronous round every worker handles a contiguous chunk of the current
// subproblem array, and new subproblems are placed via an exclusive prefix
// sum over per-worker bisection counts — the same primitive the paper uses
// to number free processors.
//
// The returned PHFResult's GlobalOps/ModelTime reflect the collective
// operations actually performed by the worker group.
func ParallelPHF(p bisect.Problem, n int, alpha float64, opt ParallelOptions) (*PHFResult, error) {
	if err := validate(p, n); err != nil {
		return nil, err
	}
	if err := bounds.ValidateAlpha(alpha); err != nil {
		return nil, err
	}
	w := opt.workers()
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	total := p.Weight()
	threshold := bounds.HFThreshold(total, alpha, n)
	logN := bounds.CollectiveCost(n)
	opt.Metrics.Gauge(mPHFWorkers).Set(int64(w))
	wallStart := time.Now()
	var phase1End time.Time // set by worker 0 at the phase transition

	// parts is allocated at full capacity up front; shared.length tracks the
	// live prefix so workers can write new children into their prefix-sum
	// slots without growing the slice concurrently.
	parts := make([]node, n)
	parts[0] = node{p, 0}
	// Shared round state, written only by worker 0 between barriers; the
	// barrier's lock ordering makes the writes visible to all workers.
	shared := struct {
		length    int // live prefix of parts
		free      int // free processors (phase 2)
		stop      bool
		phase1    bool
		rounds    int
		iters     int
		bis1      int
		bis2      int
		globalOps int64
		modelTime int64
		cut       float64 // phase-2 weight cutoff m(1−α)
		budget    int     // phase-2 per-iteration bisection budget
	}{length: 1, phase1: true}

	g := collective.NewGroup(w)
	chunk := func(id, length int) (lo, hi int) {
		lo = id * length / w
		hi = (id + 1) * length / w
		return
	}

	var wg sync.WaitGroup
	worker := func(id int) {
		defer wg.Done()
		for {
			g.Barrier()
			if shared.stop {
				return
			}
			length := shared.length
			lo, hi := chunk(id, length)

			// Identify this worker's bisection candidates for the round.
			var local []int
			if shared.phase1 {
				for i := lo; i < hi; i++ {
					if parts[i].p.Weight() > threshold && parts[i].p.CanBisect() {
						local = append(local, i)
					}
				}
			} else {
				for i := lo; i < hi; i++ {
					if parts[i].p.Weight() >= shared.cut && parts[i].p.CanBisect() {
						local = append(local, i)
					}
				}
			}
			before, totalHeavy := g.PrefixSumInt64(id, int64(len(local)))

			room := n - length
			budget := shared.budget
			if shared.phase1 {
				budget = room
			}
			if int(totalHeavy) <= budget && int(totalHeavy) <= room {
				// Common case: everyone bisects its own candidates; the
				// prefix sum gives each new child a unique slot, matching
				// the sequential append order exactly.
				for k, i := range local {
					c1, c2 := parts[i].p.Bisect()
					d := parts[i].depth + 1
					parts[i] = node{c1, d}
					parts[length+int(before)+k] = node{c2, d}
				}
				g.Barrier()
				if id == 0 {
					shared.length = length + int(totalHeavy)
					if shared.phase1 {
						shared.bis1 += int(totalHeavy)
						if totalHeavy > 0 {
							shared.rounds++
							shared.modelTime += 2
						}
					} else {
						shared.bis2 += int(totalHeavy)
						shared.free -= int(totalHeavy)
						shared.modelTime += 2
					}
				}
			} else {
				// Rare path (final phase-2 iteration, or a mis-declared α
				// in phase 1): a global selection of the heaviest
				// candidates is required; worker 0 performs it after a
				// gather, exactly as the model's O(log N) parallel
				// selection would.
				g.Barrier()
				if id == 0 {
					limit := budget
					if room < limit {
						limit = room
					}
					var all []int
					for i := 0; i < length; i++ {
						ok := false
						if shared.phase1 {
							ok = parts[i].p.Weight() > threshold && parts[i].p.CanBisect()
						} else {
							ok = parts[i].p.Weight() >= shared.cut && parts[i].p.CanBisect()
						}
						if ok {
							all = append(all, i)
						}
					}
					sort.Slice(all, func(a, b int) bool {
						pa, pb := parts[all[a]].p, parts[all[b]].p
						if pa.Weight() != pb.Weight() {
							return pa.Weight() > pb.Weight()
						}
						return pa.ID() < pb.ID()
					})
					if len(all) > limit {
						all = all[:limit]
					}
					for k, i := range all {
						c1, c2 := parts[i].p.Bisect()
						d := parts[i].depth + 1
						parts[i] = node{c1, d}
						parts[length+k] = node{c2, d}
					}
					shared.length = length + len(all)
					shared.globalOps++
					shared.modelTime += logN + 2
					if shared.phase1 {
						shared.bis1 += len(all)
						if len(all) > 0 {
							shared.rounds++
						}
					} else {
						shared.bis2 += len(all)
						shared.free -= len(all)
					}
				}
			}
			g.Barrier()

			// Round bookkeeping and phase transitions (worker 0 decides,
			// everyone observes after the next barrier at loop top).
			if id == 0 {
				if shared.phase1 {
					done := true
					for i := 0; i < shared.length; i++ {
						if parts[i].p.Weight() > threshold && parts[i].p.CanBisect() {
							done = false
							break
						}
					}
					if done || shared.length >= n {
						shared.phase1 = false
						shared.free = n - shared.length
						phase1End = time.Now()
						// Step (b)/(c): barrier + free-processor numbering.
						shared.globalOps += 2
						shared.modelTime += 2 * logN
					}
				}
				if !shared.phase1 {
					if shared.free <= 0 {
						shared.stop = true
					} else {
						// Steps (d)/(e): global max and heavy count.
						m := 0.0
						for i := 0; i < shared.length; i++ {
							if w := parts[i].p.Weight(); w > m {
								m = w
							}
						}
						shared.cut = m * (1 - alpha)
						shared.budget = shared.free
						shared.iters++
						shared.globalOps += 2
						shared.modelTime += 2 * logN
						// If nothing is divisible any more, stop.
						any := false
						for i := 0; i < shared.length; i++ {
							if parts[i].p.Weight() >= shared.cut && parts[i].p.CanBisect() {
								any = true
								break
							}
						}
						if !any {
							shared.iters--
							shared.stop = true
						}
					}
				}
			}
		}
	}

	for id := 0; id < w; id++ {
		wg.Add(1)
		go worker(id)
	}
	wg.Wait()

	end := time.Now()
	if phase1End.IsZero() {
		phase1End = end // degenerate run: never left phase 1
	}
	opt.Metrics.Counter(mPHFBis1).Add(int64(shared.bis1))
	opt.Metrics.Counter(mPHFBis2).Add(int64(shared.bis2))
	opt.Metrics.Histogram(mPHFPhase1Ns).Observe(int64(phase1End.Sub(wallStart)))
	opt.Metrics.Histogram(mPHFPhase2Ns).Observe(int64(end.Sub(phase1End)))

	out := make([]Part, shared.length)
	for i := 0; i < shared.length; i++ {
		out[i] = Part{Problem: parts[i].p, Procs: 1, Depth: parts[i].depth}
	}
	res := &PHFResult{
		Threshold:        threshold,
		Phase1Rounds:     shared.rounds,
		Phase1Bisections: shared.bis1,
		Phase2Iterations: shared.iters,
		Phase2Bisections: shared.bis2,
		ModelTime:        shared.modelTime,
		GlobalOps:        shared.globalOps + g.Barriers(),
	}
	fin := finalize("PHF", out, n, total, shared.bis1+shared.bis2, recorder{})
	res.Result = *fin
	if len(res.Parts) == 0 {
		return nil, fmt.Errorf("core: ParallelPHF produced no parts")
	}
	return res, nil
}
