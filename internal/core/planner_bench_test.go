package core

import (
	"fmt"
	"testing"

	"bisectlb/internal/bisect"
)

// Planner microbenchmarks: the BENCH_core.json grid ({HF, PHF, BA, BA-HF}
// × α × N) is produced by cmd/lbbench from internal/bench, which times the
// same calls; these go-test benchmarks exist for benchstat comparisons and
// run with -benchtime=1x in CI so a build or behaviour regression in any
// cell fails the pipeline (EXPERIMENTS.md X9).

var benchAlphas = []float64{0.1, 0.3, 0.5}
var benchNs = []int{64, 1024, 16384}

func benchPlanner(b *testing.B, run func(pl *Planner, plan *Plan, k bisect.Kernel, root bisect.FlatNode, n int, alpha float64) error) {
	for _, alpha := range benchAlphas {
		for _, n := range benchNs {
			b.Run(fmt.Sprintf("a%g/n%d", alpha, n), func(b *testing.B) {
				var k bisect.Kernel = bisect.SyntheticKernel{Lo: alpha, Hi: 0.5}
				root := bisect.SyntheticFlatRoot(1, 42)
				pl := NewPlanner(n)
				var plan Plan
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := run(pl, &plan, k, root, n, alpha); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkPlannerHF(b *testing.B) {
	benchPlanner(b, func(pl *Planner, plan *Plan, k bisect.Kernel, root bisect.FlatNode, n int, alpha float64) error {
		return pl.HFInto(plan, k, root, n)
	})
}

func BenchmarkPlannerBA(b *testing.B) {
	benchPlanner(b, func(pl *Planner, plan *Plan, k bisect.Kernel, root bisect.FlatNode, n int, alpha float64) error {
		return pl.BAInto(plan, k, root, n)
	})
}

func BenchmarkPlannerBAHF(b *testing.B) {
	benchPlanner(b, func(pl *Planner, plan *Plan, k bisect.Kernel, root bisect.FlatNode, n int, alpha float64) error {
		return pl.BAHFInto(plan, k, root, n, alpha, 1)
	})
}

func BenchmarkPlannerPHF(b *testing.B) {
	benchPlanner(b, func(pl *Planner, plan *Plan, k bisect.Kernel, root bisect.FlatNode, n int, alpha float64) error {
		return pl.PHFInto(plan, k, root, n, alpha)
	})
}

// Interface-path equivalents at the same sizes, for before/after benchstat
// against the flat planner (DESIGN.md §10).

func benchInterface(b *testing.B, run func(p bisect.Problem, n int, alpha float64) error) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			p := bisect.MustSynthetic(1, 0.1, 0.5, 42)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := run(p, n, 0.1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkInterfaceHF(b *testing.B) {
	benchInterface(b, func(p bisect.Problem, n int, alpha float64) error {
		_, err := HF(p, n, Options{})
		return err
	})
}

func BenchmarkInterfaceBA(b *testing.B) {
	benchInterface(b, func(p bisect.Problem, n int, alpha float64) error {
		_, err := BA(p, n, Options{})
		return err
	})
}
