package core

import (
	"math"

	"bisectlb/internal/bisect"
)

// SplitProcs implements BA's processor partitioning rule (paper Figure 3):
// given children weights w1 ≥ w2 and n ≥ 2 processors, assign n1 processors
// to the heavy child and n−n1 to the light child such that
// max(w1/n1, w2/n2) is minimised — the "best approximation of ideal weight".
// The minimiser always lies in {⌊β̂·n⌋, ⌈β̂·n⌉} with β̂ = w1/(w1+w2), clamped
// into [1, n−1]; ties choose the floor, matching the paper's "n1 := ⌊β̂n⌋ if
// d ≤ …" preference for the smaller allocation.
func SplitProcs(w1, w2 float64, n int) (n1, n2 int) {
	if n < 2 {
		panic("core: SplitProcs needs n ≥ 2")
	}
	if !(w1 > 0) || !(w2 > 0) || w1 < w2 {
		panic("core: SplitProcs needs w1 ≥ w2 > 0")
	}
	bhat := w1 / (w1 + w2)
	exact := bhat * float64(n)
	lo := int(math.Floor(exact))
	hi := lo + 1
	lo = clamp(lo, 1, n-1)
	hi = clamp(hi, 1, n-1)
	costLo := splitCost(w1, w2, lo, n)
	costHi := splitCost(w1, w2, hi, n)
	if costHi < costLo {
		return hi, n - hi
	}
	return lo, n - lo
}

func splitCost(w1, w2 float64, n1, n int) float64 {
	a := w1 / float64(n1)
	b := w2 / float64(n-n1)
	if a > b {
		return a
	}
	return b
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// NaiveSplitProcs assigns n1 = clamp(⌊β̂·n⌋) without considering the ⌈·⌉
// candidate. It is the ablation baseline for the best-approximation rule
// (DESIGN.md §7) and intentionally not used by any algorithm.
func NaiveSplitProcs(w1, w2 float64, n int) (n1, n2 int) {
	if n < 2 {
		panic("core: NaiveSplitProcs needs n ≥ 2")
	}
	bhat := w1 / (w1 + w2)
	n1 = clamp(int(math.Floor(bhat*float64(n))), 1, n-1)
	return n1, n - n1
}

// splitRule is the processor-partitioning strategy used by a BA-family run.
type splitRule func(w1, w2 float64, n int) (int, int)

// BA implements Algorithm BA (Best Approximation of ideal weight, paper
// Figure 3): bisect the problem, split the processors between the two
// children proportionally to their weights using SplitProcs, and recurse.
// BA needs no knowledge of the bisection parameter α, performs exactly n−1
// bisections (for divisible problems), requires no global communication and
// admits the trivial range-based free-processor management of Section 3.4.
//
// Theorem 7 guarantees max_i w(p_i) ≤ (w(p)/n) · e·(1/α)(1−α)^{⌈1/(2α)⌉−1}
// for classes with α-bisectors.
func BA(p bisect.Problem, n int, opt Options) (*Result, error) {
	return baWithRule(p, n, opt, SplitProcs, "BA")
}

// BANaiveSplit is BA with the NaiveSplitProcs ablation rule.
func BANaiveSplit(p bisect.Problem, n int, opt Options) (*Result, error) {
	return baWithRule(p, n, opt, NaiveSplitProcs, "BA-naive")
}

func baWithRule(p bisect.Problem, n int, opt Options, rule splitRule, name string) (*Result, error) {
	if err := validate(p, n); err != nil {
		return nil, err
	}
	rec := newRecorder(opt, p)
	total := p.Weight()
	parts := make([]Part, 0, n)
	bisections := 0

	var recurse func(q bisect.Problem, procs, depth int) error
	recurse = func(q bisect.Problem, procs, depth int) error {
		rec.procs(q, procs)
		if procs == 1 || !q.CanBisect() {
			parts = append(parts, Part{Problem: q, Procs: procs, Depth: depth})
			return nil
		}
		c1, c2 := q.Bisect()
		bisections++
		if err := rec.bisection(q, c1, c2); err != nil {
			return err
		}
		// Order children so c1 is the heavy one, per the "w.l.o.g." in the
		// paper; substrates already return heavy-first but a custom Problem
		// implementation need not.
		if c1.Weight() < c2.Weight() {
			c1, c2 = c2, c1
		}
		n1, n2 := rule(c1.Weight(), c2.Weight(), procs)
		if err := recurse(c1, n1, depth+1); err != nil {
			return err
		}
		return recurse(c2, n2, depth+1)
	}
	if err := recurse(p, n, 0); err != nil {
		return nil, err
	}
	return finalize(name, parts, n, total, bisections, rec), nil
}

// BAPrime implements Algorithm BA′ (Section 3.4): identical to BA except
// that subproblems with weight at most threshold are never bisected — they
// become parts holding their whole processor range. PHF's free-processor
// bootstrap runs BA′ with threshold = w(p)·r_α/n; afterwards every part
// either is at or below the HF threshold or sits on a single processor.
func BAPrime(p bisect.Problem, n int, threshold float64, opt Options) (*Result, error) {
	if err := validate(p, n); err != nil {
		return nil, err
	}
	rec := newRecorder(opt, p)
	total := p.Weight()
	parts := make([]Part, 0, n)
	bisections := 0

	var recurse func(q bisect.Problem, procs, depth int) error
	recurse = func(q bisect.Problem, procs, depth int) error {
		rec.procs(q, procs)
		if procs == 1 || q.Weight() <= threshold || !q.CanBisect() {
			parts = append(parts, Part{Problem: q, Procs: procs, Depth: depth})
			return nil
		}
		c1, c2 := q.Bisect()
		bisections++
		if err := rec.bisection(q, c1, c2); err != nil {
			return err
		}
		if c1.Weight() < c2.Weight() {
			c1, c2 = c2, c1
		}
		n1, n2 := SplitProcs(c1.Weight(), c2.Weight(), procs)
		if err := recurse(c1, n1, depth+1); err != nil {
			return err
		}
		return recurse(c2, n2, depth+1)
	}
	if err := recurse(p, n, 0); err != nil {
		return nil, err
	}
	return finalize("BA'", parts, n, total, bisections, rec), nil
}
