package core

import (
	"bisectlb/internal/bisect"
	"bisectlb/internal/pheap"
)

// node pairs a problem with its bisection-tree depth.
type node struct {
	p     bisect.Problem
	depth int
}

// HF implements Algorithm HF (Heaviest Problem First, paper Figure 1): keep
// a pool of subproblems initialised to {p} and, while the pool holds fewer
// than n subproblems, bisect a subproblem of maximum weight. Ties on weight
// are broken by the smaller problem ID so runs are reproducible.
//
// For a class with α-bisectors, Theorem 2 guarantees
//
//	max_i w(p_i) ≤ (w(p)/n) · r_α,   r_α = (1/α)(1−α)^{⌈1/α⌉−2},
//
// using exactly n−1 bisections. HF is the sequential baseline every parallel
// algorithm in this package is measured against.
//
// Indivisible subproblems (CanBisect() == false) are parked as final parts;
// if every remaining subproblem is indivisible the partition ends with fewer
// than n parts, which the paper's model explicitly allows ("some processors
// remain idle").
func HF(p bisect.Problem, n int, opt Options) (*Result, error) {
	if err := validate(p, n); err != nil {
		return nil, err
	}
	rec := newRecorder(opt, p)
	total := p.Weight()

	// Subproblems live in a slice arena; the heap holds (weight, id, ref)
	// triples indexing it. Pushing arena indices instead of boxed values
	// keeps the heap allocation-free (DESIGN.md §10).
	arena := make([]node, 1, 2*n)
	arena[0] = node{p, 0}
	h := pheap.New(n)
	h.Push(pheap.Item{Weight: total, ID: p.ID(), Ref: 0})
	final := make([]Part, 0, n)
	bisections := 0

	for h.Len() > 0 && len(final)+h.Len() < n {
		it := h.Pop()
		nd := arena[it.Ref]
		if !nd.p.CanBisect() {
			final = append(final, Part{Problem: nd.p, Procs: 1, Depth: nd.depth})
			continue
		}
		c1, c2 := nd.p.Bisect()
		bisections++
		if err := rec.bisection(nd.p, c1, c2); err != nil {
			return nil, err
		}
		arena = append(arena, node{c1, nd.depth + 1}, node{c2, nd.depth + 1})
		h.Push(pheap.Item{Weight: c1.Weight(), ID: c1.ID(), Ref: int32(len(arena) - 2)})
		h.Push(pheap.Item{Weight: c2.Weight(), ID: c2.ID(), Ref: int32(len(arena) - 1)})
	}
	h.Drain(func(it pheap.Item) {
		nd := arena[it.Ref]
		final = append(final, Part{Problem: nd.p, Procs: 1, Depth: nd.depth})
	})
	return finalize("HF", final, n, total, bisections, rec), nil
}

// HFScan is Algorithm HF implemented with a linear scan for the maximum
// instead of a heap. It exists purely as the ablation baseline for the
// BenchmarkHFHeapVsScan comparison (DESIGN.md §7); callers should use HF.
func HFScan(p bisect.Problem, n int, opt Options) (*Result, error) {
	if err := validate(p, n); err != nil {
		return nil, err
	}
	rec := newRecorder(opt, p)
	total := p.Weight()

	pool := []node{{p, 0}}
	var final []Part
	bisections := 0
	for len(pool) > 0 && len(final)+len(pool) < n {
		// Linear scan for the heaviest subproblem (ties: smaller ID).
		best := 0
		for i := 1; i < len(pool); i++ {
			wi, wb := pool[i].p.Weight(), pool[best].p.Weight()
			if wi > wb || (wi == wb && pool[i].p.ID() < pool[best].p.ID()) {
				best = i
			}
		}
		nd := pool[best]
		pool[best] = pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		if !nd.p.CanBisect() {
			final = append(final, Part{Problem: nd.p, Procs: 1, Depth: nd.depth})
			continue
		}
		c1, c2 := nd.p.Bisect()
		bisections++
		if err := rec.bisection(nd.p, c1, c2); err != nil {
			return nil, err
		}
		pool = append(pool, node{c1, nd.depth + 1}, node{c2, nd.depth + 1})
	}
	for _, nd := range pool {
		final = append(final, Part{Problem: nd.p, Procs: 1, Depth: nd.depth})
	}
	return finalize("HF", final, n, total, bisections, rec), nil
}
