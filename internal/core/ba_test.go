package core

import (
	"math"
	"testing"
	"testing/quick"

	"bisectlb/internal/bisect"
	"bisectlb/internal/bistree"
	"bisectlb/internal/bounds"
	"bisectlb/internal/xrand"
)

func TestSplitProcsIsOptimal(t *testing.T) {
	// Property: SplitProcs minimises max(w1/n1, w2/n2) over ALL feasible
	// splits, not just the two rounding candidates (Lemma 4's claim is that
	// the optimum lies at the roundings; verify by brute force).
	rng := xrand.New(3)
	f := func(seed uint64) bool {
		rng.Reseed(seed)
		w2 := rng.InRange(0.1, 10)
		w1 := w2 + rng.InRange(0, 10)
		n := 2 + rng.Intn(500)
		n1, n2 := SplitProcs(w1, w2, n)
		if n1+n2 != n || n1 < 1 || n2 < 1 {
			return false
		}
		got := math.Max(w1/float64(n1), w2/float64(n2))
		best := math.Inf(1)
		for k := 1; k < n; k++ {
			c := math.Max(w1/float64(k), w2/float64(n-k))
			if c < best {
				best = c
			}
		}
		return got <= best*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitProcsKnownCases(t *testing.T) {
	// Equal weights, even n: exact halves.
	n1, n2 := SplitProcs(5, 5, 10)
	if n1 != 5 || n2 != 5 {
		t.Fatalf("equal split got %d/%d", n1, n2)
	}
	// Heavy 3:1 with 4 processors: 3 and 1.
	n1, n2 = SplitProcs(3, 1, 4)
	if n1 != 3 || n2 != 1 {
		t.Fatalf("3:1 split got %d/%d", n1, n2)
	}
	// Extreme skew must still leave one processor for the light child.
	n1, n2 = SplitProcs(1000, 1, 4)
	if n2 != 1 {
		t.Fatalf("extreme skew starved light child: %d/%d", n1, n2)
	}
}

func TestSplitProcsPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"n=1":     func() { SplitProcs(2, 1, 1) },
		"w1<w2":   func() { SplitProcs(1, 2, 4) },
		"zero w2": func() { SplitProcs(1, 0, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBABasicContract(t *testing.T) {
	p := bisect.MustSynthetic(100, 0.1, 0.5, 1)
	for _, n := range []int{1, 2, 3, 7, 32, 100, 1024} {
		res, err := BA(p, n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Parts) != n {
			t.Fatalf("n=%d: got %d parts", n, len(res.Parts))
		}
		if res.Bisections != n-1 {
			t.Fatalf("n=%d: %d bisections, want %d", n, res.Bisections, n-1)
		}
		if err := res.CheckPartition(1e-9); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		procs := 0
		for _, pt := range res.Parts {
			procs += pt.Procs
		}
		if procs != n {
			t.Fatalf("n=%d: processor counts sum to %d", n, procs)
		}
	}
}

func TestBAGuaranteeFixedSplits(t *testing.T) {
	for _, alpha := range []float64{0.05, 0.1, 0.2, 1.0 / 3.0, 0.5} {
		p := bisect.MustFixed(1, alpha)
		for _, n := range []int{2, 3, 5, 16, 100, 511, 4096} {
			res, err := BA(p, n, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if limit := bounds.BA(alpha, n); res.Ratio > limit+1e-9 {
				t.Fatalf("α=%v n=%d: ratio %v exceeds BA guarantee %v", alpha, n, res.Ratio, limit)
			}
		}
	}
}

func TestBAGuaranteeRandomInstances(t *testing.T) {
	rng := xrand.New(17)
	f := func(seed uint64) bool {
		rng.Reseed(seed)
		lo := rng.InRange(0.02, 0.45)
		hi := rng.InRange(lo, 0.5)
		n := 2 + rng.Intn(3000)
		p := bisect.MustSynthetic(1, lo, hi, seed)
		res, err := BA(p, n, Options{})
		if err != nil {
			return false
		}
		return res.Ratio <= bounds.BA(lo, n)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBADepthBound(t *testing.T) {
	for _, alpha := range []float64{0.1, 0.3, 0.5} {
		p := bisect.MustFixed(1, alpha)
		for _, n := range []int{16, 256, 4096} {
			res, err := BA(p, n, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if limit := bounds.BADepth(alpha, n); res.MaxDepth > limit {
				t.Fatalf("α=%v n=%d: depth %d exceeds bound %d", alpha, n, res.MaxDepth, limit)
			}
		}
	}
}

func TestBATreeRecordsProcs(t *testing.T) {
	p := bisect.MustSynthetic(1, 0.2, 0.5, 9)
	res, err := BA(p, 16, Options{RecordTree: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree.Root.Procs != 16 {
		t.Fatalf("root procs = %d", res.Tree.Root.Procs)
	}
	if err := res.Tree.CheckInvariants(1e-9); err != nil {
		t.Fatal(err)
	}
	// At each internal node the children's processor counts must sum to
	// the parent's (processors are partitioned, never duplicated or lost).
	res.Tree.Walk(func(n *bistree.Node) {
		if n.IsLeaf() {
			return
		}
		if n.Children[0].Procs+n.Children[1].Procs != n.Procs {
			t.Fatalf("node %d: procs %d+%d != %d",
				n.ID, n.Children[0].Procs, n.Children[1].Procs, n.Procs)
		}
	})
}

func TestBAIndivisible(t *testing.T) {
	p := bisect.MustList(4, 0.25, 11)
	res, err := BA(p, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) > 4 {
		t.Fatalf("%d parts from 4 elements", len(res.Parts))
	}
	procs := 0
	for _, pt := range res.Parts {
		procs += pt.Procs
	}
	if procs != 16 {
		t.Fatalf("indivisible run lost processors: %d", procs)
	}
}

func TestBANaiveSplitNeverBetter(t *testing.T) {
	// The ablation: the naive floor-only rule can never beat the
	// best-approximation rule on the same instance.
	rng := xrand.New(23)
	worseSomewhere := false
	for trial := 0; trial < 100; trial++ {
		seed := rng.Uint64()
		n := 2 + rng.Intn(500)
		p1 := bisect.MustSynthetic(1, 0.05, 0.5, seed)
		p2 := bisect.MustSynthetic(1, 0.05, 0.5, seed)
		a, err := BA(p1, n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := BANaiveSplit(p2, n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Not a per-instance theorem (different splits cascade), so only
		// track the aggregate: naive should lose on average.
		if b.Ratio > a.Ratio+1e-12 {
			worseSomewhere = true
		}
	}
	if !worseSomewhere {
		t.Fatal("naive split never worse in 100 trials — ablation suspicious")
	}
}

func TestBAPrimeThresholdInvariant(t *testing.T) {
	alpha := 0.1
	p := bisect.MustSynthetic(1, alpha, 0.5, 31)
	n := 256
	threshold := bounds.HFThreshold(1, alpha, n)
	res, err := BAPrime(p, n, threshold, Options{})
	if err != nil {
		t.Fatal(err)
	}
	procs := 0
	for _, pt := range res.Parts {
		procs += pt.Procs
		// Section 3.4: after BA′, every remaining subproblem heavier than
		// the threshold sits on a single processor.
		if pt.Problem.Weight() > threshold && pt.Procs != 1 {
			t.Fatalf("part w=%v > threshold %v has %d procs", pt.Problem.Weight(), threshold, pt.Procs)
		}
	}
	if procs != n {
		t.Fatalf("processors lost: %d", procs)
	}
	if len(res.Parts) > n {
		t.Fatalf("too many parts: %d", len(res.Parts))
	}
}

func TestBAPrimeBisectsFewerThanBA(t *testing.T) {
	alpha := 0.1
	p := bisect.MustSynthetic(1, alpha, 0.5, 37)
	n := 512
	threshold := bounds.HFThreshold(1, alpha, n)
	prime, err := BAPrime(p, n, threshold, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := BA(bisect.MustSynthetic(1, alpha, 0.5, 37), n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if prime.Bisections >= full.Bisections {
		t.Fatalf("BA' used %d bisections, BA %d", prime.Bisections, full.Bisections)
	}
}
