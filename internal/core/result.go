package core

import (
	"fmt"
	"math"
	"sort"

	"bisectlb/internal/bisect"
	"bisectlb/internal/bistree"
)

// Part is one subproblem of the computed partition.
type Part struct {
	Problem bisect.Problem
	// Procs is the number of processors responsible for the subproblem.
	// It is 1 for every part of an HF/PHF partition; the BA family can
	// assign several processors to an indivisible problem (the extras
	// stay idle) and BA′ deliberately parks whole processor ranges on
	// subthreshold parts.
	Procs int
	// Depth is the part's depth in the bisection tree (root = 0).
	Depth int
}

// Result is the outcome of one load-balancing run.
type Result struct {
	// Algorithm names the algorithm that produced the result.
	Algorithm string
	// Parts are the computed subproblems in ascending problem-ID order.
	Parts []Part
	// N is the requested processor count.
	N int
	// Total is the root problem weight.
	Total float64
	// Max is the heaviest part weight.
	Max float64
	// Ratio is Max / (Total/N), the paper's quality measure.
	Ratio float64
	// Bisections is the number of bisection steps performed.
	Bisections int
	// MaxDepth is the deepest leaf of the bisection tree.
	MaxDepth int
	// Tree is the recorded bisection tree, nil unless requested.
	Tree *bistree.Tree
}

// Options configure an algorithm run.
type Options struct {
	// RecordTree enables bisection-tree recording on the Result. Recording
	// costs memory proportional to the number of bisections.
	RecordTree bool
}

// recorder wraps an optional bistree.Tree so algorithm code can record
// unconditionally.
type recorder struct {
	tree *bistree.Tree
}

func newRecorder(opt Options, root bisect.Problem) recorder {
	if !opt.RecordTree {
		return recorder{}
	}
	return recorder{tree: bistree.New(root.ID(), root.Weight())}
}

func (r recorder) bisection(parent, c1, c2 bisect.Problem) error {
	if r.tree == nil {
		return nil
	}
	return r.tree.RecordBisection(parent.ID(), c1.ID(), c1.Weight(), c2.ID(), c2.Weight())
}

func (r recorder) procs(p bisect.Problem, n int) {
	if r.tree == nil {
		return
	}
	// The node must exist; SetProcs only fails for unknown IDs, which would
	// indicate a recording bug, so surface it loudly in development builds.
	if err := r.tree.SetProcs(p.ID(), n); err != nil {
		panic(err)
	}
}

// finalize sorts parts, computes the summary statistics and attaches the
// recorded tree.
func finalize(alg string, parts []Part, n int, total float64, bisections int, rec recorder) *Result {
	sort.Slice(parts, func(i, j int) bool { return parts[i].Problem.ID() < parts[j].Problem.ID() })
	maxW := 0.0
	maxD := 0
	for _, pt := range parts {
		if w := pt.Problem.Weight(); w > maxW {
			maxW = w
		}
		if pt.Depth > maxD {
			maxD = pt.Depth
		}
	}
	return &Result{
		Algorithm:  alg,
		Parts:      parts,
		N:          n,
		Total:      total,
		Max:        maxW,
		Ratio:      bisect.Ratio(maxW, total, n),
		Bisections: bisections,
		MaxDepth:   maxD,
		Tree:       rec.tree,
	}
}

// validate checks the shared preconditions of every algorithm.
func validate(p bisect.Problem, n int) error {
	if err := bisect.ValidateRoot(p); err != nil {
		return err
	}
	if n < 1 {
		return fmt.Errorf("core: processor count must be ≥ 1, got %d", n)
	}
	return nil
}

// PartIDs returns the sorted problem IDs of a result's parts.
func (r *Result) PartIDs() []uint64 {
	ids := make([]uint64, len(r.Parts))
	for i, pt := range r.Parts {
		ids[i] = pt.Problem.ID()
	}
	return ids
}

// Weights returns the part weights in ID order.
func (r *Result) Weights() []float64 {
	ws := make([]float64, len(r.Parts))
	for i, pt := range r.Parts {
		ws[i] = pt.Problem.Weight()
	}
	return ws
}

// SamePartition reports whether two results consist of exactly the same
// subproblems, identified by problem ID. It is the executable form of the
// paper's Theorem 3 ("Algorithm PHF produces the same partitioning of p into
// subproblems as Algorithm HF").
func SamePartition(a, b *Result) bool {
	if a == nil || b == nil || len(a.Parts) != len(b.Parts) {
		return false
	}
	ai, bi := a.PartIDs(), b.PartIDs()
	for i := range ai {
		if ai[i] != bi[i] {
			return false
		}
	}
	return true
}

// CheckPartition verifies the structural contract of a result: part count
// within [1, N], all weights positive, weights summing to the total within
// relative tolerance tol, and Max/Ratio consistent. Algorithms are tested
// against it; users can call it to validate custom Problem implementations.
func (r *Result) CheckPartition(tol float64) error {
	if len(r.Parts) == 0 {
		return fmt.Errorf("core: result has no parts")
	}
	if len(r.Parts) > r.N {
		return fmt.Errorf("core: %d parts exceed %d processors", len(r.Parts), r.N)
	}
	sum := 0.0
	maxW := 0.0
	for _, pt := range r.Parts {
		w := pt.Problem.Weight()
		if !(w > 0) {
			return fmt.Errorf("core: part %d has non-positive weight %g", pt.Problem.ID(), w)
		}
		if pt.Procs < 1 {
			return fmt.Errorf("core: part %d assigned %d processors", pt.Problem.ID(), pt.Procs)
		}
		sum += w
		if w > maxW {
			maxW = w
		}
	}
	if d := math.Abs(sum - r.Total); d > tol*r.Total {
		return fmt.Errorf("core: part weights sum to %g, want %g", sum, r.Total)
	}
	if math.Abs(maxW-r.Max) > tol*r.Total {
		return fmt.Errorf("core: recorded max %g, recomputed %g", r.Max, maxW)
	}
	return nil
}
