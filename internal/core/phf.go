package core

import (
	"sort"

	"bisectlb/internal/bisect"
	"bisectlb/internal/bounds"
)

// PHFResult augments Result with the phase accounting of Algorithm PHF.
type PHFResult struct {
	Result
	// Threshold is the weight w(p)·r_α/N separating the two phases.
	Threshold float64
	// Phase1Rounds counts the synchronous bisection rounds of phase one
	// (each round: every subproblem heavier than the threshold is bisected
	// concurrently). It is bounded by bounds.PHFPhase1Depth.
	Phase1Rounds int
	// Phase1Bisections counts the bisections performed in phase one.
	Phase1Bisections int
	// Phase2Iterations counts phase-two iterations (each involving global
	// communication). It is bounded by bounds.PHFPhase2Iterations.
	Phase2Iterations int
	// Phase2Bisections counts the bisections performed in phase two.
	Phase2Bisections int
	// ModelTime is the running time in the paper's cost model: one unit
	// per bisection and per transmission, ⌈log2 N⌉ per global operation.
	ModelTime int64
	// GlobalOps counts global communication operations (reductions,
	// broadcasts, barriers, selections).
	GlobalOps int64
}

// PHF implements Algorithm PHF (paper Figure 2), the parallelisation of HF
// that provably computes the identical partition (Theorem 3). This function
// is the *logical* round-structured execution: it performs the same
// bisections in the same synchronous rounds a parallel machine would and
// accounts model time and global operations, but runs in one goroutine.
// ParallelPHF executes the identical schedule with real worker goroutines
// and collectives, and internal/machine replays it on the simulated machine
// with explicit processors and messages.
//
// Phase one repeatedly bisects, in parallel rounds, every subproblem heavier
// than the threshold w(p)·r_α/N — such subproblems are certainly bisected by
// HF. Phase two then performs synchronized iterations: determine the maximum
// weight m among the subproblems, bisect (up to the number of remaining free
// processors) all subproblems with weight ≥ m·(1−α), and repeat until no
// processor is free. Both phases need the class parameter α.
//
// Tie caveat: the identity with HF is exact whenever subproblem weights are
// pairwise distinct, which holds almost surely under the paper's continuous
// stochastic model. With exactly tied weights (e.g. the Fixed adversarial
// class) HF's ID tie-break and PHF's round structure can resolve ties
// differently; PHF's output is then still *a* valid HF output — every PHF
// bisection sequence can be reordered into a heaviest-first sequence under
// some tie order — but not necessarily the one core.HF's deterministic
// tie-break produces.
func PHF(p bisect.Problem, n int, alpha float64, opt Options) (*PHFResult, error) {
	if err := validate(p, n); err != nil {
		return nil, err
	}
	if err := bounds.ValidateAlpha(alpha); err != nil {
		return nil, err
	}
	rec := newRecorder(opt, p)
	total := p.Weight()
	threshold := bounds.HFThreshold(total, alpha, n)
	logN := bounds.CollectiveCost(n)

	res := &PHFResult{Threshold: threshold}
	parts := []node{{p, 0}}

	// Phase one: synchronous rounds bisecting everything above threshold.
	for {
		var heavy []int
		for i, nd := range parts {
			if nd.p.Weight() > threshold && nd.p.CanBisect() {
				heavy = append(heavy, i)
			}
		}
		if len(heavy) == 0 {
			break
		}
		// For a correct α and a conforming problem class, phase one cannot
		// overshoot n parts (every bisected node is an internal node of
		// HF's tree, of which there are at most n−1). Guard anyway so that
		// a mis-declared α degrades gracefully instead of overflowing: if
		// the round would exceed n parts, bisect only the heaviest ones
		// that still fit, exactly as HF would prioritise them.
		if room := n - len(parts); len(heavy) > room {
			sort.Slice(heavy, func(a, b int) bool {
				pa, pb := parts[heavy[a]].p, parts[heavy[b]].p
				if pa.Weight() != pb.Weight() {
					return pa.Weight() > pb.Weight()
				}
				return pa.ID() < pb.ID()
			})
			heavy = heavy[:room]
		}
		if len(heavy) == 0 {
			break
		}
		for _, i := range heavy {
			nd := parts[i]
			c1, c2 := nd.p.Bisect()
			res.Phase1Bisections++
			if err := rec.bisection(nd.p, c1, c2); err != nil {
				return nil, err
			}
			parts[i] = node{c1, nd.depth + 1}
			parts = append(parts, node{c2, nd.depth + 1})
		}
		res.Phase1Rounds++
		// One bisection plus one transmission per round of the local chains.
		res.ModelTime += 2
	}
	// Barrier ending phase one (step (b)), plus the free-processor count and
	// numbering (step (c)).
	res.ModelTime += 2 * logN
	res.GlobalOps += 2

	// Phase two: iterate until no processor remains free.
	f := n - len(parts)
	for f > 0 {
		// Step (d): maximum weight of remaining subproblems (global).
		m := 0.0
		for _, nd := range parts {
			if w := nd.p.Weight(); w > m {
				m = w
			}
		}
		// Step (e): processors whose subproblem weighs ≥ m(1−α) (global).
		cut := m * (1 - alpha)
		var heavy []int
		for i, nd := range parts {
			if nd.p.Weight() >= cut && nd.p.CanBisect() {
				heavy = append(heavy, i)
			}
		}
		res.GlobalOps += 2
		res.ModelTime += 2 * logN
		if len(heavy) == 0 {
			// Every subproblem at the maximum weight is indivisible; the
			// remaining processors stay idle, as the model permits.
			break
		}
		h := len(heavy)
		if h > f {
			// Step (3b): select the f heaviest subproblems (global
			// selection, only ever needed in the final iteration).
			sort.Slice(heavy, func(a, b int) bool {
				pa, pb := parts[heavy[a]].p, parts[heavy[b]].p
				if pa.Weight() != pb.Weight() {
					return pa.Weight() > pb.Weight()
				}
				return pa.ID() < pb.ID()
			})
			heavy = heavy[:f]
			res.GlobalOps++
			res.ModelTime += logN
		}
		for _, i := range heavy {
			nd := parts[i]
			c1, c2 := nd.p.Bisect()
			res.Phase2Bisections++
			if err := rec.bisection(nd.p, c1, c2); err != nil {
				return nil, err
			}
			parts[i] = node{c1, nd.depth + 1}
			parts = append(parts, node{c2, nd.depth + 1})
		}
		// Bisection and transmission happen concurrently across processors.
		res.ModelTime += 2
		f -= len(heavy)
		res.Phase2Iterations++
		if f > 0 {
			// Step (h): barrier between iterations.
			res.GlobalOps++
			res.ModelTime += logN
		}
	}

	out := make([]Part, len(parts))
	for i, nd := range parts {
		out[i] = Part{Problem: nd.p, Procs: 1, Depth: nd.depth}
	}
	fin := finalize("PHF", out, n, total, res.Phase1Bisections+res.Phase2Bisections, rec)
	res.Result = *fin
	return res, nil
}
