package core

// Native fuzz targets. Under plain `go test` these run on their seed
// corpus; `go test -fuzz FuzzHFPHFIdentity ./internal/core` explores
// further. All targets sanitise their raw inputs into valid parameter
// space first — the interesting surface is the algorithm logic, not the
// input validation (which has dedicated unit tests).

import (
	"math"
	"testing"

	"bisectlb/internal/bisect"
	"bisectlb/internal/bounds"
)

// sanitizeInterval folds two arbitrary float64s into a valid α̂ interval
// 0 < lo < hi ≤ 1/2 and an n in [1, 1500]. The interval is kept
// non-degenerate (hi ≥ lo + 0.02): a zero-width interval produces exactly
// tied subproblem weights, under which the PHF ≡ HF identity intentionally
// weakens (see the tie caveat on PHF); the identity fuzz target explores
// the continuous regime the theorem addresses. The fuzzer discovered this
// itself at lo=hi=0.25 — that input is kept in testdata as a regression
// seed for the sanitiser.
func sanitizeInterval(a, b float64, nRaw uint16) (lo, hi float64, n int) {
	fold := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0.25
		}
		x = math.Abs(x)
		x -= math.Floor(x) // [0, 1)
		return 0.01 + x*0.47
	}
	lo, hi = fold(a), fold(b)
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi < lo+0.02 {
		hi = lo + 0.02
	}
	if hi > 0.5 {
		hi = 0.5
	}
	if lo > hi-0.02 {
		lo = hi - 0.02
	}
	n = 1 + int(nRaw)%1500
	return
}

func FuzzHFPHFIdentity(f *testing.F) {
	f.Add(uint64(1), uint16(64), 0.1, 0.5)
	f.Add(uint64(42), uint16(1), 0.01, 0.01)
	f.Add(uint64(7), uint16(999), 0.3, 0.49)
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint16, a, b float64) {
		lo, hi, n := sanitizeInterval(a, b, nRaw)
		hf, err := HF(bisect.MustSynthetic(1, lo, hi, seed), n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		phf, err := PHF(bisect.MustSynthetic(1, lo, hi, seed), n, lo, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !SamePartition(hf, &phf.Result) {
			t.Fatalf("PHF != HF at lo=%v hi=%v n=%d seed=%d", lo, hi, n, seed)
		}
		if err := hf.CheckPartition(1e-9); err != nil {
			t.Fatal(err)
		}
	})
}

func FuzzGuarantees(f *testing.F) {
	f.Add(uint64(3), uint16(100), 0.2, 0.4)
	f.Add(uint64(11), uint16(1024), 0.05, 0.5)
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint16, a, b float64) {
		lo, hi, n := sanitizeInterval(a, b, nRaw)
		hf, err := HF(bisect.MustSynthetic(1, lo, hi, seed), n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if hf.Ratio > bounds.RHF(lo)+1e-9 {
			t.Fatalf("HF guarantee violated: lo=%v hi=%v n=%d ratio=%v", lo, hi, n, hf.Ratio)
		}
		ba, err := BA(bisect.MustSynthetic(1, lo, hi, seed), n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ba.Ratio > bounds.BA(lo, n)+1e-9 {
			t.Fatalf("BA guarantee violated: lo=%v hi=%v n=%d ratio=%v", lo, hi, n, ba.Ratio)
		}
	})
}

func FuzzBAHFSandwich(f *testing.F) {
	f.Add(uint64(5), uint16(200), 0.15, 0.5, 1.5)
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint16, a, b, kRaw float64) {
		lo, hi, n := sanitizeInterval(a, b, nRaw)
		kappa := 0.25
		if !math.IsNaN(kRaw) && !math.IsInf(kRaw, 0) {
			k := math.Abs(kRaw)
			k -= math.Floor(k)
			kappa = 0.25 + 4*k
		}
		hyb, err := BAHF(bisect.MustSynthetic(1, lo, hi, seed), n, lo, kappa, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := hyb.CheckPartition(1e-9); err != nil {
			t.Fatal(err)
		}
		limit := bounds.BAHF(lo, kappa)
		if r := bounds.RHF(lo); r > limit {
			limit = r
		}
		if hyb.Ratio > limit+1e-9 {
			t.Fatalf("BA-HF guarantee violated: lo=%v κ=%v n=%d ratio=%v", lo, kappa, n, hyb.Ratio)
		}
	})
}
