package core

import (
	"fmt"
	"unsafe"

	"bisectlb/internal/bisect"
	"bisectlb/internal/bounds"
	"bisectlb/internal/pheap"
)

// FlatPart is one subproblem of a Plan: a flat node plus the processor
// count responsible for it.
type FlatPart struct {
	Node  bisect.FlatNode
	Procs int32
}

// Plan is the reusable result buffer of the allocation-free planner. A
// Plan filled by one planning call may be passed to the next; its Parts
// backing array is truncated and reused, so a caller that keeps one Plan
// per worker reaches a steady state in which planning performs no heap
// allocations at all (the property tracked by TestPlannerAllocationFree
// and the BENCH_core.json suite; see DESIGN.md §10).
//
// Plan mirrors Result but holds value-type FlatParts instead of Problem
// interfaces; use Result and the interface algorithms when bisection-tree
// recording or custom Problem implementations are needed.
type Plan struct {
	// Algorithm names the algorithm that produced the plan ("HF", "BA",
	// "BA-HF", "PHF").
	Algorithm string
	// N is the requested processor count.
	N int
	// Total is the root problem weight.
	Total float64
	// Max is the heaviest part weight.
	Max float64
	// Ratio is Max / (Total/N), the paper's quality measure.
	Ratio float64
	// Bisections is the number of bisection steps performed.
	Bisections int
	// MaxDepth is the deepest leaf of the bisection tree.
	MaxDepth int
	// Parts are the computed subproblems in ascending ID order. The slice
	// is owned by the Plan and overwritten by the next planning call that
	// receives this Plan.
	Parts []FlatPart
}

// reset prepares the plan for refilling, retaining the Parts storage.
func (p *Plan) reset(alg string, n int, total float64) {
	p.Algorithm = alg
	p.N = n
	p.Total = total
	p.Max = 0
	p.Ratio = 0
	p.Bisections = 0
	p.MaxDepth = 0
	p.Parts = p.Parts[:0]
}

// finalize sorts the parts by ID and computes the summary statistics.
func (p *Plan) finalize(bisections int) {
	sortParts(p.Parts)
	maxW := 0.0
	maxD := int32(0)
	for _, pt := range p.Parts {
		if pt.Node.Weight > maxW {
			maxW = pt.Node.Weight
		}
		if pt.Node.Depth > maxD {
			maxD = pt.Node.Depth
		}
	}
	p.Max = maxW
	p.MaxDepth = int(maxD)
	p.Ratio = bisect.Ratio(maxW, p.Total, p.N)
	p.Bisections = bisections
}

// baFrame is one pending subtree of the explicit BA/BA-HF recursion stack.
type baFrame struct {
	nd    bisect.FlatNode
	procs int32
}

// Planner plans partitions without allocating on the steady-state path.
// It owns every buffer the algorithms need — the max-heap, the node arena,
// the explicit recursion stack and the index scratch — and reuses them
// across calls. The zero value is ready for use. A Planner is not safe for
// concurrent use; keep one per goroutine (the serving layer pools them).
//
// The planner runs the same algorithms as HF, BA, BAHF and PHF but over
// value-type flat nodes split by a bisect.Kernel instead of heap-allocated
// Problem values, which removes the two-allocations-per-bisection floor
// the interface model imposes. Parity with the interface algorithms is
// enforced by planner_test.go for every kernel substrate.
type Planner struct {
	heap pheap.Heap
	// bq is the monotone bucket-queue alternative to heap for the HF
	// paths; useBucket selects it (SetBucketQueue). Both produce the
	// identical pop sequence — the choice trades constants, never output
	// (pinned by TestPlannerBucketQueueParity).
	bq        pheap.BucketQueue
	useBucket bool
	arena     []bisect.FlatNode
	stack     []baFrame
	idx       []int32
}

// SetBucketQueue selects the queue behind HFInto and BA-HF's HF finish:
// false (the default) is the binary heap, true the monotone bucket
// queue of internal/pheap, which replaces the heap's O(log n) per
// operation with amortized O(1) over α-band weight classes (DESIGN.md
// §13). Output is bit-identical either way; the bucket queue wins above
// roughly N=4096 and costs a one-time ~48 KiB directory.
func (pl *Planner) SetBucketQueue(on bool) { pl.useBucket = on }

// BucketQueueEnabled reports which queue HFInto currently uses.
func (pl *Planner) BucketQueueEnabled() bool { return pl.useBucket }

// Footprint reports the total bytes retained by the planner's reusable
// buffers. Pool stewards (internal/service) use it to decide whether a
// planner has grown too large to keep pooled.
func (pl *Planner) Footprint() int {
	return cap(pl.arena)*int(unsafe.Sizeof(bisect.FlatNode{})) +
		cap(pl.stack)*int(unsafe.Sizeof(baFrame{})) +
		cap(pl.idx)*int(unsafe.Sizeof(int32(0))) +
		pl.heap.Footprint() + pl.bq.Footprint()
}

// NewPlanner returns a Planner with buffers pre-sized for plans of about
// n parts.
func NewPlanner(n int) *Planner {
	if n < 1 {
		n = 1
	}
	return &Planner{
		arena: make([]bisect.FlatNode, 0, 2*n),
		stack: make([]baFrame, 0, 64),
		idx:   make([]int32, 0, n),
	}
}

func plannerValidate(root bisect.FlatNode, n int) error {
	if err := bisect.ValidateFlatRoot(root); err != nil {
		return err
	}
	if n < 1 {
		return fmt.Errorf("core: processor count must be ≥ 1, got %d", n)
	}
	return nil
}

// HFInto runs Algorithm HF (paper Figure 1) over the flat substrate k,
// writing the partition into plan.
func (pl *Planner) HFInto(plan *Plan, k bisect.Kernel, root bisect.FlatNode, n int) error {
	if err := plannerValidate(root, n); err != nil {
		return err
	}
	plan.reset("HF", n, root.Weight)
	plan.finalize(pl.hfFinish(plan, k, root, n))
	return nil
}

// hfExpandHeap is the HF loop shared by HFInto, BA-HF's inner phase and
// the parallel planner's subtree tasks: heaviest-first bisection of root
// into at most procs parts, appended to plan. It reuses the planner's
// arena and binary heap (resetting both first) and returns the bisection
// count. Leftover queue entries become parts via Drain — the safe
// replacement for the old Items-then-Reset aliasing idiom.
//
// hfExpandBucket is its textually parallel twin over the bucket queue.
// Neither an interface value nor a generic type parameter can unify the
// two: both turn every Push/Pop on the hottest loop in the repo into a
// dynamic (dictionary) dispatch, and the Drain callback then escapes to
// the heap — one allocation per BA-HF inner phase, which
// TestPlannerAllocationFree forbids. Two concrete copies keep every call
// devirtualized and every closure on the stack. Keep them in lockstep;
// the bucket-queue parity tests pin their equivalence.
func (pl *Planner) hfExpandHeap(plan *Plan, k bisect.Kernel, root bisect.FlatNode, procs int) int {
	q := &pl.heap
	q.Reset()
	pl.arena = append(pl.arena[:0], root)
	q.Push(pheap.Item{Weight: root.Weight, ID: root.ID, Ref: 0})
	bisections := 0
	done := 0
	for q.Len() > 0 && done+q.Len() < procs {
		it := q.Pop()
		nd := pl.arena[it.Ref]
		if nd.Leaf {
			plan.Parts = append(plan.Parts, FlatPart{Node: nd, Procs: 1})
			done++
			continue
		}
		c1, c2 := k.Split(nd)
		bisections++
		pl.arena = append(pl.arena, c1, c2)
		q.Push(pheap.Item{Weight: c1.Weight, ID: c1.ID, Ref: int32(len(pl.arena) - 2)})
		q.Push(pheap.Item{Weight: c2.Weight, ID: c2.ID, Ref: int32(len(pl.arena) - 1)})
	}
	q.Drain(func(it pheap.Item) {
		plan.Parts = append(plan.Parts, FlatPart{Node: pl.arena[it.Ref], Procs: 1})
	})
	return bisections
}

// hfExpandBucket mirrors hfExpandHeap over the monotone bucket queue.
// See the comment there for why the duplication is load-bearing.
func (pl *Planner) hfExpandBucket(plan *Plan, k bisect.Kernel, root bisect.FlatNode, procs int) int {
	q := &pl.bq
	q.Reset()
	pl.arena = append(pl.arena[:0], root)
	q.Push(pheap.Item{Weight: root.Weight, ID: root.ID, Ref: 0})
	bisections := 0
	done := 0
	for q.Len() > 0 && done+q.Len() < procs {
		it := q.Pop()
		nd := pl.arena[it.Ref]
		if nd.Leaf {
			plan.Parts = append(plan.Parts, FlatPart{Node: nd, Procs: 1})
			done++
			continue
		}
		c1, c2 := k.Split(nd)
		bisections++
		pl.arena = append(pl.arena, c1, c2)
		q.Push(pheap.Item{Weight: c1.Weight, ID: c1.ID, Ref: int32(len(pl.arena) - 2)})
		q.Push(pheap.Item{Weight: c2.Weight, ID: c2.ID, Ref: int32(len(pl.arena) - 1)})
	}
	q.Drain(func(it pheap.Item) {
		plan.Parts = append(plan.Parts, FlatPart{Node: pl.arena[it.Ref], Procs: 1})
	})
	return bisections
}

// BAInto runs Algorithm BA (paper Figure 3) over the flat substrate k,
// writing the partition into plan. The recursion is an explicit stack so
// the steady-state path allocates nothing.
func (pl *Planner) BAInto(plan *Plan, k bisect.Kernel, root bisect.FlatNode, n int) error {
	if err := plannerValidate(root, n); err != nil {
		return err
	}
	plan.reset("BA", n, root.Weight)
	plan.finalize(pl.baExpand(plan, k, root, int32(n), 0))
	return nil
}

// baExpand runs the BA recursion (explicit stack) from the frame
// (nd, procs), appending parts to plan and returning the bisection
// count. A cutoff > 1 turns it into the BA-HF loop: frames whose
// processor count drops below the cutoff finish with the HF inner phase
// instead of further BA splits. It is the shared engine behind BAInto,
// BAHFInto and the parallel planner's subtree tasks.
func (pl *Planner) baExpand(plan *Plan, k bisect.Kernel, nd bisect.FlatNode, procs int32, cutoff float64) int {
	bisections := 0
	pl.stack = append(pl.stack[:0], baFrame{nd, procs})
	for len(pl.stack) > 0 {
		fr := pl.stack[len(pl.stack)-1]
		pl.stack = pl.stack[:len(pl.stack)-1]
		if fr.procs == 1 || fr.nd.Leaf {
			plan.Parts = append(plan.Parts, FlatPart{Node: fr.nd, Procs: fr.procs})
			continue
		}
		if float64(fr.procs) < cutoff {
			bisections += pl.hfFinish(plan, k, fr.nd, int(fr.procs))
			continue
		}
		c1, c2 := k.Split(fr.nd)
		bisections++
		if c1.Weight < c2.Weight {
			c1, c2 = c2, c1
		}
		n1, n2 := SplitProcs(c1.Weight, c2.Weight, int(fr.procs))
		// Light child pushed first so the heavy child is processed next,
		// mirroring the interface BA's recursion order.
		pl.stack = append(pl.stack, baFrame{c2, int32(n2)}, baFrame{c1, int32(n1)})
	}
	return bisections
}

// BAHFInto runs Algorithm BA-HF (paper Figure 4) over the flat substrate
// k: BA-style processor splitting while the processor count is at least
// κ/α + 1, HF below. It writes the partition into plan.
func (pl *Planner) BAHFInto(plan *Plan, k bisect.Kernel, root bisect.FlatNode, n int, alpha, kappa float64) error {
	if err := plannerValidate(root, n); err != nil {
		return err
	}
	if err := bounds.ValidateAlpha(alpha); err != nil {
		return err
	}
	if err := bounds.ValidateKappa(kappa); err != nil {
		return err
	}
	plan.reset("BA-HF", n, root.Weight)
	plan.finalize(pl.baExpand(plan, k, root, int32(n), kappa/alpha+1))
	return nil
}

// hfFinish runs heaviest-first expansion of q into at most procs parts —
// the whole of Algorithm HF, and the inner phase of BA-HF — appending
// parts to plan and returning the bisection count. It reuses the
// planner's selected queue and arena, resetting them first.
func (pl *Planner) hfFinish(plan *Plan, k bisect.Kernel, q bisect.FlatNode, procs int) int {
	if pl.useBucket {
		return pl.hfExpandBucket(plan, k, q, procs)
	}
	return pl.hfExpandHeap(plan, k, q, procs)
}

// PHFInto runs the logical Algorithm PHF (paper Figure 2) over the flat
// substrate k, writing the partition into plan. It performs the identical
// bisections in the identical synchronous rounds as PHF, so its output
// matches PHF's part for part (and HF's, under PHF's tie caveat); it does
// not account model time — use PHF when phase accounting is wanted.
func (pl *Planner) PHFInto(plan *Plan, k bisect.Kernel, root bisect.FlatNode, n int, alpha float64) error {
	if err := plannerValidate(root, n); err != nil {
		return err
	}
	if err := bounds.ValidateAlpha(alpha); err != nil {
		return err
	}
	plan.reset("PHF", n, root.Weight)
	threshold := bounds.HFThreshold(root.Weight, alpha, n)
	bisections := 0

	parts := append(pl.arena[:0], root)

	// Phase one: synchronous rounds bisecting everything above threshold.
	for {
		heavy := pl.idx[:0]
		for i := range parts {
			if parts[i].Weight > threshold && !parts[i].Leaf {
				heavy = append(heavy, int32(i))
			}
		}
		// Same overflow guard as PHF: a mis-declared α must degrade to
		// bisecting only the heaviest subproblems that still fit.
		if room := n - len(parts); len(heavy) > room {
			sortIdxByWeight(parts, heavy)
			heavy = heavy[:room]
		}
		pl.idx = heavy[:0]
		if len(heavy) == 0 {
			break
		}
		for _, i := range heavy {
			nd := parts[i]
			c1, c2 := k.Split(nd)
			bisections++
			parts[i] = c1
			parts = append(parts, c2)
		}
	}

	// Phase two: iterate until no processor remains free.
	f := n - len(parts)
	for f > 0 {
		m := 0.0
		for i := range parts {
			if parts[i].Weight > m {
				m = parts[i].Weight
			}
		}
		cut := m * (1 - alpha)
		heavy := pl.idx[:0]
		for i := range parts {
			if parts[i].Weight >= cut && !parts[i].Leaf {
				heavy = append(heavy, int32(i))
			}
		}
		if len(heavy) == 0 {
			pl.idx = heavy
			break
		}
		if len(heavy) > f {
			sortIdxByWeight(parts, heavy)
			heavy = heavy[:f]
		}
		pl.idx = heavy[:0]
		for _, i := range heavy {
			nd := parts[i]
			c1, c2 := k.Split(nd)
			bisections++
			parts[i] = c1
			parts = append(parts, c2)
		}
		f -= len(heavy)
	}

	pl.arena = parts
	for _, nd := range parts {
		plan.Parts = append(plan.Parts, FlatPart{Node: nd, Procs: 1})
	}
	plan.finalize(bisections)
	return nil
}

// sortParts heap-sorts parts in ascending ID order. A hand-rolled sort —
// rather than sort.Slice, whose comparator closure escapes — keeps
// finalize allocation-free.
func sortParts(parts []FlatPart) {
	n := len(parts)
	for i := n/2 - 1; i >= 0; i-- {
		siftParts(parts, i, n)
	}
	for end := n - 1; end > 0; end-- {
		parts[0], parts[end] = parts[end], parts[0]
		siftParts(parts, 0, end)
	}
}

// siftParts sifts down in a max-heap ordered by ID.
func siftParts(parts []FlatPart, i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		big := l
		if r := l + 1; r < n && parts[r].Node.ID > parts[l].Node.ID {
			big = r
		}
		if parts[big].Node.ID <= parts[i].Node.ID {
			return
		}
		parts[i], parts[big] = parts[big], parts[i]
		i = big
	}
}

// sortIdxByWeight heap-sorts the index slice so the referenced nodes come
// heaviest first, ties broken by smaller ID — the selection order PHF's
// overflow guard and final iteration require. Allocation-free for the same
// reason as sortParts.
func sortIdxByWeight(parts []bisect.FlatNode, idx []int32) {
	n := len(idx)
	for i := n/2 - 1; i >= 0; i-- {
		siftIdx(parts, idx, i, n)
	}
	for end := n - 1; end > 0; end-- {
		idx[0], idx[end] = idx[end], idx[0]
		siftIdx(parts, idx, 0, end)
	}
}

// idxLess orders descending weight, then ascending ID (the "heavier
// first" total order). siftIdx builds a min-heap of that order so the
// heapsort leaves idx sorted heaviest-first.
func idxLess(parts []bisect.FlatNode, a, b int32) bool {
	pa, pb := &parts[a], &parts[b]
	if pa.Weight != pb.Weight {
		return pa.Weight > pb.Weight
	}
	return pa.ID < pb.ID
}

func siftIdx(parts []bisect.FlatNode, idx []int32, i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		last := l
		if r := l + 1; r < n && idxLess(parts, idx[l], idx[r]) {
			last = r
		}
		if !idxLess(parts, idx[i], idx[last]) {
			return
		}
		idx[i], idx[last] = idx[last], idx[i]
		i = last
	}
}
