package core

import (
	"errors"
	"math"
	"testing"

	"bisectlb/internal/bisect"
)

// deltaCase is one substrate × algorithm combination the delta planner
// must patch correctly.
type deltaCase struct {
	name   string
	flat   bisect.FlatNode
	kernel bisect.Kernel
	alg    string
	alpha  float64
	kappa  float64
}

func deltaCases() []deltaCase {
	syn := bisect.SyntheticKernel{Lo: 0.2, Hi: 0.5}
	fix := bisect.FixedKernel{Alpha: 0.3}
	lst := bisect.ListKernel{Alpha: 0.25}
	return []deltaCase{
		{"uniform/HF", bisect.SyntheticFlatRoot(1, 42), syn, "HF", 0.2, 0},
		{"uniform/BA", bisect.SyntheticFlatRoot(1, 42), syn, "BA", 0.2, 0},
		{"uniform/BA-HF", bisect.SyntheticFlatRoot(1, 42), syn, "BA-HF", 0.2, 1.5},
		{"fixed/HF", bisect.FixedFlatRoot(2), fix, "HF", 0.3, 0},
		{"fixed/BA", bisect.FixedFlatRoot(2), fix, "BA", 0.3, 0},
		{"list/HF", bisect.ListFlatRoot(100000, 0.25, 7), lst, "HF", 0.25, 0},
		{"list/BA-HF", bisect.ListFlatRoot(100000, 0.25, 7), lst, "BA-HF", 0.25, 1.5},
	}
}

// planCase computes a fresh prior plan for a delta case.
func planCase(t *testing.T, pl *Planner, c deltaCase, n int) *Plan {
	t.Helper()
	plan := &Plan{}
	var err error
	switch c.alg {
	case "HF":
		err = pl.HFInto(plan, c.kernel, c.flat, n)
	case "BA":
		err = pl.BAInto(plan, c.kernel, c.flat, n)
	case "BA-HF":
		err = pl.BAHFInto(plan, c.kernel, c.flat, n, c.alpha, c.kappa)
	default:
		t.Fatalf("unknown algorithm %q", c.alg)
	}
	if err != nil {
		t.Fatalf("%s plan: %v", c.alg, err)
	}
	return plan
}

// heaviestSplittable returns the heaviest non-leaf part of a plan.
func heaviestSplittable(t *testing.T, p *Plan) FlatPart {
	t.Helper()
	best := -1
	for i, pt := range p.Parts {
		if pt.Node.Leaf {
			continue
		}
		if best < 0 || pt.Node.Weight > p.Parts[best].Node.Weight {
			best = i
		}
	}
	if best < 0 {
		t.Fatal("plan has no splittable part")
	}
	return p.Parts[best]
}

// driftTop drifts the count heaviest splittable parts of prior so each
// lands at loadMult times the prior mean — comfortably above every
// algorithm's band for loadMult = 12 while keeping the dirty weight
// fraction well under the 0.5 full-replan trigger.
func driftTop(t *testing.T, prior *Plan, count int, loadMult float64) ([]WeightDelta, map[uint64]float64) {
	t.Helper()
	mean := prior.Total / float64(prior.N)
	idx := make([]int, 0, len(prior.Parts))
	for i, pt := range prior.Parts {
		if !pt.Node.Leaf {
			idx = append(idx, i)
		}
	}
	for a := 0; a < len(idx); a++ { // selection sort: tiny count, test-only
		best := a
		for b := a + 1; b < len(idx); b++ {
			if prior.Parts[idx[b]].Node.Weight > prior.Parts[idx[best]].Node.Weight {
				best = b
			}
		}
		idx[a], idx[best] = idx[best], idx[a]
	}
	if len(idx) < count {
		t.Fatalf("only %d splittable parts, want %d", len(idx), count)
	}
	deltas := make([]WeightDelta, 0, count)
	factors := map[uint64]float64{}
	for _, i := range idx[:count] {
		pt := prior.Parts[i]
		f := loadMult * mean / pt.Node.Weight
		deltas = append(deltas, WeightDelta{ID: pt.Node.ID, Factor: f})
		factors[pt.Node.ID] = f
	}
	return deltas, factors
}

func plansIdentical(t *testing.T, a, b *Plan, what string) {
	t.Helper()
	if a.Algorithm != b.Algorithm || a.N != b.N || a.Total != b.Total ||
		a.Max != b.Max || a.Ratio != b.Ratio || a.Bisections != b.Bisections || a.MaxDepth != b.MaxDepth {
		t.Fatalf("%s: summaries differ:\n%+v\n%+v", what,
			[7]any{a.Algorithm, a.N, a.Total, a.Max, a.Ratio, a.Bisections, a.MaxDepth},
			[7]any{b.Algorithm, b.N, b.Total, b.Max, b.Ratio, b.Bisections, b.MaxDepth})
	}
	if len(a.Parts) != len(b.Parts) {
		t.Fatalf("%s: %d vs %d parts", what, len(a.Parts), len(b.Parts))
	}
	for i := range a.Parts {
		if a.Parts[i] != b.Parts[i] {
			t.Fatalf("%s: part %d differs: %+v vs %+v", what, i, a.Parts[i], b.Parts[i])
		}
	}
}

func TestPatchNoopReturnsPriorObject(t *testing.T) {
	for _, c := range deltaCases() {
		t.Run(c.name, func(t *testing.T) {
			pl := NewPlanner(64)
			prior := planCase(t, pl, c, 64)
			dp := NewDeltaPlanner(64)
			opt := PatchOptions{Alpha: c.alpha, Kappa: c.kappa}

			// Zero deltas: nothing drifts, nothing is dirty.
			dst := &PatchedPlan{}
			got, stats, err := dp.PatchInto(dst, c.kernel, c.flat, prior, nil, opt)
			if err != nil {
				t.Fatalf("PatchInto: %v", err)
			}
			if got != prior {
				t.Fatalf("zero-delta patch returned a new plan object, want the prior itself")
			}
			if stats.Outcome != PatchNoop {
				t.Fatalf("outcome %v, want noop", stats.Outcome)
			}

			// Uniform drift scales every load and the mean alike, so the
			// prior plan remains exactly as balanced as before: noop.
			uni := make([]WeightDelta, len(prior.Parts))
			for i, pt := range prior.Parts {
				uni[i] = WeightDelta{ID: pt.Node.ID, Factor: 3.5}
			}
			got, stats, err = dp.PatchInto(dst, c.kernel, c.flat, prior, uni, opt)
			if err != nil {
				t.Fatalf("uniform PatchInto: %v", err)
			}
			if got != prior || stats.Outcome != PatchNoop {
				t.Fatalf("uniform drift: got outcome %v (prior returned: %v), want noop on the prior object",
					stats.Outcome, got == prior)
			}
		})
	}
}

func TestPatchFullDriftDegeneratesToFreshPlan(t *testing.T) {
	for _, c := range deltaCases() {
		t.Run(c.name, func(t *testing.T) {
			pl := NewPlanner(64)
			prior := planCase(t, pl, c, 64)

			// Blowing one splittable part up by 10^4 concentrates nearly
			// all drifted weight in the dirty set, crossing the 0.5
			// weight-fraction fallback.
			hv := heaviestSplittable(t, prior)
			deltas := []WeightDelta{{ID: hv.Node.ID, Factor: 1e4}}

			dp := NewDeltaPlanner(64)
			dst := &PatchedPlan{}
			got, stats, err := dp.PatchInto(dst, c.kernel, c.flat, prior, deltas, PatchOptions{Alpha: c.alpha, Kappa: c.kappa})
			if err != nil {
				t.Fatalf("PatchInto: %v", err)
			}
			if stats.Outcome != PatchFullReplan {
				t.Fatalf("outcome %v (dirtyW=%v totalD=%v), want full_replan",
					stats.Outcome, stats.DirtyWeight, stats.DriftedTotal)
			}
			if got != &dst.Plan {
				t.Fatal("full replan must return &dst.Plan")
			}
			fresh := planCase(t, NewPlanner(64), c, 64)
			plansIdentical(t, got, fresh, "full replan vs fresh")
			for i := range dst.Plan.Parts {
				if dst.Group[i] != int32(i) || dst.GroupProcs[i] != dst.Plan.Parts[i].Procs {
					t.Fatalf("full replan groups not singleton at %d: group=%d procs=%d",
						i, dst.Group[i], dst.GroupProcs[i])
				}
			}
		})
	}
}

// checkPatched asserts the splice invariants and the repair bound of a
// patched plan against its prior (the same checks verify.CheckPatch*
// perform; duplicated minimally here because core's in-package tests
// cannot import verify).
func checkPatched(t *testing.T, dst *PatchedPlan, prior *Plan, factors map[uint64]float64) {
	t.Helper()
	p := &dst.Plan
	if len(dst.Group) != len(p.Parts) {
		t.Fatalf("Group len %d vs %d parts", len(dst.Group), len(p.Parts))
	}
	// Parts strictly ascending by ID; total conserved.
	sum := 0.0
	for i, pt := range p.Parts {
		if i > 0 && p.Parts[i-1].Node.ID >= pt.Node.ID {
			t.Fatalf("part IDs not strictly ascending at %d", i)
		}
		sum += pt.Node.Weight
	}
	if math.Abs(sum-p.Total) > 1e-9*p.Total {
		t.Fatalf("parts sum %v, total %v", sum, p.Total)
	}
	// Processor conservation: ΣGroupProcs == Σ prior procs.
	gp, pp := 0, 0
	for _, g := range dst.GroupProcs {
		gp += int(g)
	}
	for _, pt := range prior.Parts {
		pp += int(pt.Procs)
	}
	if gp != pp {
		t.Fatalf("group procs sum %d, prior procs sum %d", gp, pp)
	}
	// Untouched parts: same ID ⇒ same procs, weight = prior × factor.
	priorByID := map[uint64]FlatPart{}
	for _, pt := range prior.Parts {
		priorByID[pt.Node.ID] = pt
	}
	for i, pt := range p.Parts {
		pr, ok := priorByID[pt.Node.ID]
		if !ok {
			continue // repair fragment with a new ID
		}
		f := factors[pt.Node.ID]
		if f == 0 {
			f = 1
		}
		if dst.GroupProcs[dst.Group[i]] == pr.Procs && pt.Node.ID == pr.Node.ID {
			if want := pr.Node.Weight * f; math.Abs(pt.Node.Weight-want) > 1e-12*want {
				t.Fatalf("part %d weight %v, want %v", pt.Node.ID, pt.Node.Weight, want)
			}
		}
	}
	// Ratio measure consistent with group loads.
	loads := dst.GroupLoads(nil)
	maxL := 0.0
	for _, l := range loads {
		if l > maxL {
			maxL = l
		}
	}
	if maxL != p.Max {
		t.Fatalf("max group load %v, plan.Max %v", maxL, p.Max)
	}
	// The headline bound, when every pool item fit under the bin target
	// and no oversize leaf survives.
	if dst.Stats.Oversize == 0 && dst.Stats.OversizeLeaves == 0 {
		bound := dst.Stats.Band * (1 + 1e-6)
		if p.Ratio > bound {
			t.Fatalf("patched ratio %v exceeds band bound %v", p.Ratio, bound)
		}
	}
}

func TestPatchModerateDriftInvariants(t *testing.T) {
	for _, c := range deltaCases() {
		t.Run(c.name, func(t *testing.T) {
			pl := NewPlanner(128)
			prior := planCase(t, pl, c, 128)
			// Land three parts at 12× the mean: above every band (the
			// largest default, BA's, is ≈8.7 at α=0.2 N=128) without
			// tripping the full-replan weight fraction.
			deltas, factors := driftTop(t, prior, 3, 12)
			dp := NewDeltaPlanner(128)
			dst := &PatchedPlan{}
			got, stats, err := dp.PatchInto(dst, c.kernel, c.flat, prior, deltas, PatchOptions{Alpha: c.alpha, Kappa: c.kappa})
			if err != nil {
				t.Fatalf("PatchInto: %v", err)
			}
			if stats.Outcome == PatchNoop {
				t.Fatalf("×8 drift on 3 parts was a noop (band %v)", stats.Band)
			}
			if stats.Outcome != PatchPatched {
				t.Skipf("drift crossed into %v on this substrate", stats.Outcome)
			}
			if got != &dst.Plan {
				t.Fatal("patched outcome must return &dst.Plan")
			}
			if stats.Dirty == 0 || stats.Pool == 0 || stats.PoolItems == 0 {
				t.Fatalf("implausible stats: %+v", stats)
			}
			checkPatched(t, dst, prior, factors)
		})
	}
}

// TestPatchParityAcrossConfigs pins that the patched plan is
// bit-identical across the sequential and parallel repair paths and the
// heap and bucket queue substrates (the queues only drive the fresh
// fallback and never the threshold expansion, but the contract is the
// full config matrix).
func TestPatchParityAcrossConfigs(t *testing.T) {
	for _, c := range deltaCases() {
		t.Run(c.name, func(t *testing.T) {
			pl := NewPlanner(256)
			prior := planCase(t, pl, c, 256)
			deltas, factors := driftTop(t, prior, 5, 12)
			opt := PatchOptions{Alpha: c.alpha, Kappa: c.kappa, ParallelDirty: 1}

			type cfg struct {
				name     string
				parallel bool
				bucket   bool
			}
			cfgs := []cfg{
				{"seq-heap", false, false},
				{"seq-bucket", false, true},
				{"par-heap", true, false},
				{"par-bucket", true, true},
			}
			var ref *PatchedPlan
			var refStats PatchStats
			for _, cf := range cfgs {
				dp := NewDeltaPlanner(256)
				if cf.parallel {
					dp.SetParallel(NewParallelPlanner(256, ParallelOptions{Workers: 4}))
				}
				dp.SetBucketQueue(cf.bucket)
				dst := &PatchedPlan{}
				_, stats, err := dp.PatchInto(dst, c.kernel, c.flat, prior, deltas, opt)
				if err != nil {
					t.Fatalf("%s: PatchInto: %v", cf.name, err)
				}
				if cf.parallel && stats.Outcome == PatchPatched && !stats.Parallel {
					t.Fatalf("%s: parallel repair did not engage (dirty=%d)", cf.name, stats.Dirty)
				}
				if ref == nil {
					ref, refStats = dst, stats
					if stats.Outcome == PatchPatched {
						checkPatched(t, dst, prior, factors)
					}
					continue
				}
				if stats.Outcome != refStats.Outcome || stats.Splits != refStats.Splits ||
					stats.Dirty != refStats.Dirty || stats.Donors != refStats.Donors ||
					stats.PoolItems != refStats.PoolItems {
					t.Fatalf("%s: stats diverge: %+v vs %+v", cf.name, stats, refStats)
				}
				plansIdentical(t, &dst.Plan, &ref.Plan, cf.name)
				for i := range dst.Group {
					if dst.Group[i] != ref.Group[i] {
						t.Fatalf("%s: group[%d] %d vs %d", cf.name, i, dst.Group[i], ref.Group[i])
					}
				}
				for g := range dst.GroupProcs {
					if dst.GroupProcs[g] != ref.GroupProcs[g] {
						t.Fatalf("%s: groupProcs[%d] %d vs %d", cf.name, g, dst.GroupProcs[g], ref.GroupProcs[g])
					}
				}
			}
		})
	}
}

func TestPatchInputErrors(t *testing.T) {
	c := deltaCases()[0]
	pl := NewPlanner(32)
	prior := planCase(t, pl, c, 32)
	dp := NewDeltaPlanner(32)
	dst := &PatchedPlan{}
	opt := PatchOptions{Alpha: c.alpha}

	if _, _, err := dp.PatchInto(dst, c.kernel, c.flat, prior,
		[]WeightDelta{{ID: 999999999, Factor: 2}}, opt); !errors.Is(err, ErrUnknownPart) {
		t.Fatalf("unknown part: got %v", err)
	}
	for _, f := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, _, err := dp.PatchInto(dst, c.kernel, c.flat, prior,
			[]WeightDelta{{ID: prior.Parts[0].Node.ID, Factor: f}}, opt); !errors.Is(err, ErrBadFactor) {
			t.Fatalf("factor %v: got %v", f, err)
		}
	}
	badRoot := c.flat
	badRoot.Weight *= 2
	if _, _, err := dp.PatchInto(dst, c.kernel, badRoot, prior, nil, opt); !errors.Is(err, ErrPlanMismatch) {
		t.Fatalf("mismatched root: got %v", err)
	}
	if _, _, err := dp.PatchInto(dst, c.kernel, c.flat, &Plan{Algorithm: "HF", N: 32, Total: c.flat.Weight}, nil, opt); !errors.Is(err, ErrPlanMismatch) {
		t.Fatalf("empty prior: got %v", err)
	}
	if _, _, err := dp.PatchInto(dst, c.kernel, c.flat, prior, nil, PatchOptions{Alpha: 0.7}); err == nil {
		t.Fatal("bad alpha accepted")
	}
	if _, _, err := dp.PatchInto(dst, c.kernel, c.flat, prior, nil, PatchOptions{Alpha: c.alpha, BandHigh: 0.5}); err == nil {
		t.Fatal("BandHigh ≤ 1 accepted")
	}
	weird := *prior
	weird.Algorithm = "mystery"
	if _, _, err := dp.PatchInto(dst, c.kernel, c.flat, &weird, nil, opt); err == nil {
		t.Fatal("unknown algorithm accepted for default band")
	}
	if _, _, err := dp.PatchInto(nil, c.kernel, c.flat, prior, nil, opt); err == nil {
		t.Fatal("nil dst accepted")
	}
	if _, _, err := dp.PatchInto(dst, c.kernel, c.flat, nil, nil, opt); err == nil {
		t.Fatal("nil prior accepted")
	}
}

// TestPatchBufferReuse pins that a PatchedPlan buffer refilled after a
// previous patch yields exactly the plan a fresh buffer yields — the
// reuse contract the serving layer's pooling depends on.
func TestPatchBufferReuse(t *testing.T) {
	c := deltaCases()[0]
	pl := NewPlanner(128)
	prior := planCase(t, pl, c, 128)
	var deltas []WeightDelta
	for _, pt := range prior.Parts {
		if !pt.Node.Leaf {
			deltas = append(deltas, WeightDelta{ID: pt.Node.ID, Factor: 9})
			if len(deltas) == 2 {
				break
			}
		}
	}
	dp := NewDeltaPlanner(128)
	opt := PatchOptions{Alpha: c.alpha}

	fresh := &PatchedPlan{}
	if _, _, err := dp.PatchInto(fresh, c.kernel, c.flat, prior, deltas, opt); err != nil {
		t.Fatal(err)
	}
	reused := &PatchedPlan{}
	// Dirty the buffer with a different patch first.
	if _, _, err := dp.PatchInto(reused, c.kernel, c.flat, prior,
		deltas[:1], opt); err != nil {
		t.Fatal(err)
	}
	if _, _, err := dp.PatchInto(reused, c.kernel, c.flat, prior, deltas, opt); err != nil {
		t.Fatal(err)
	}
	plansIdentical(t, &reused.Plan, &fresh.Plan, "buffer reuse")
	for i := range fresh.Group {
		if fresh.Group[i] != reused.Group[i] {
			t.Fatalf("group[%d] differs after reuse", i)
		}
	}
}
