package core

import (
	"math"
	"testing"
	"testing/quick"

	"bisectlb/internal/bisect"
	"bisectlb/internal/bistree"
	"bisectlb/internal/bounds"
	"bisectlb/internal/xrand"
)

func TestHFBasicContract(t *testing.T) {
	p := bisect.MustSynthetic(100, 0.1, 0.5, 1)
	for _, n := range []int{1, 2, 3, 7, 32, 100, 1024} {
		res, err := HF(p, n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Parts) != n {
			t.Fatalf("n=%d: got %d parts", n, len(res.Parts))
		}
		if res.Bisections != n-1 {
			t.Fatalf("n=%d: %d bisections, want %d", n, res.Bisections, n-1)
		}
		if res.Ratio < 1-1e-9 {
			t.Fatalf("n=%d: ratio %v below 1", n, res.Ratio)
		}
		if err := res.CheckPartition(1e-9); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestHFSingleProcessor(t *testing.T) {
	p := bisect.MustSynthetic(5, 0.2, 0.5, 2)
	res, err := HF(p, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != 1 || res.Bisections != 0 {
		t.Fatalf("parts=%d bisections=%d", len(res.Parts), res.Bisections)
	}
	if math.Abs(res.Ratio-1) > 1e-12 {
		t.Fatalf("ratio %v, want 1", res.Ratio)
	}
}

func TestHFErrors(t *testing.T) {
	if _, err := HF(nil, 4, Options{}); err == nil {
		t.Fatal("nil problem accepted")
	}
	p := bisect.MustSynthetic(1, 0.1, 0.5, 1)
	if _, err := HF(p, 0, Options{}); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := HF(p, -3, Options{}); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestHFGuaranteeFixedSplits(t *testing.T) {
	// Theorem 2 on the adversarial fixed-α class, across the α grid.
	for _, alpha := range []float64{0.05, 0.1, 0.2, 1.0 / 3.0, 0.4, 0.5} {
		r := bounds.RHF(alpha)
		p := bisect.MustFixed(1, alpha)
		for _, n := range []int{2, 3, 5, 16, 100, 511} {
			res, err := HF(p, n, Options{})
			if err != nil {
				t.Fatal(err)
			}
			// The guarantee holds against the general r_α or the trivial
			// N=… small-case value 2(1−α); use the max for tightness.
			limit := math.Max(r, 2*(1-alpha))
			if res.Ratio > limit+1e-9 {
				t.Fatalf("α=%v n=%d: ratio %v exceeds guarantee %v", alpha, n, res.Ratio, limit)
			}
		}
	}
}

func TestHFGuaranteeRandomInstances(t *testing.T) {
	rng := xrand.New(99)
	f := func(seed uint64) bool {
		rng.Reseed(seed)
		lo := rng.InRange(0.02, 0.45)
		hi := rng.InRange(lo, 0.5)
		n := 2 + rng.Intn(2000)
		p := bisect.MustSynthetic(1, lo, hi, seed)
		res, err := HF(p, n, Options{})
		if err != nil {
			return false
		}
		limit := math.Max(bounds.RHF(lo), 2*(1-lo))
		return res.Ratio <= limit+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHFDeterminism(t *testing.T) {
	p := bisect.MustSynthetic(1, 0.1, 0.5, 77)
	a, err := HF(p, 200, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := HF(bisect.MustSynthetic(1, 0.1, 0.5, 77), 200, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !SamePartition(a, b) {
		t.Fatal("identical inputs produced different partitions")
	}
}

func TestHFTreeRecording(t *testing.T) {
	p := bisect.MustSynthetic(1, 0.1, 0.5, 5)
	res, err := HF(p, 64, Options{RecordTree: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Tree
	if tr == nil {
		t.Fatal("tree not recorded")
	}
	if tr.NumLeaves() != 64 {
		t.Fatalf("tree has %d leaves", tr.NumLeaves())
	}
	if tr.NumInternal() != res.Bisections {
		t.Fatalf("tree internal=%d, bisections=%d", tr.NumInternal(), res.Bisections)
	}
	if err := tr.CheckInvariants(1e-9); err != nil {
		t.Fatal(err)
	}
	if tr.MaxLeafDepth() != res.MaxDepth {
		t.Fatalf("tree depth %d != result depth %d", tr.MaxLeafDepth(), res.MaxDepth)
	}
	if math.Abs(tr.MaxLeafWeight()-res.Max) > 1e-12 {
		t.Fatal("tree max leaf weight differs from result")
	}
}

func TestHFWithoutTreeHasNilTree(t *testing.T) {
	p := bisect.MustSynthetic(1, 0.1, 0.5, 5)
	res, err := HF(p, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree != nil {
		t.Fatal("tree recorded without request")
	}
}

func TestHFIndivisibleStopsEarly(t *testing.T) {
	// A 5-element list cannot be split into more than 5 parts.
	p := bisect.MustList(5, 0.2, 3)
	res, err := HF(p, 50, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) > 5 {
		t.Fatalf("got %d parts from 5 elements", len(res.Parts))
	}
	for _, pt := range res.Parts {
		if pt.Problem.CanBisect() {
			t.Fatal("HF stopped early while a part was still divisible")
		}
	}
	sum := 0
	for _, pt := range res.Parts {
		sum += pt.Problem.(*bisect.List).Len()
	}
	if sum != 5 {
		t.Fatalf("elements lost: %d", sum)
	}
}

func TestHFHeaviestFirstProperty(t *testing.T) {
	// HF bisects a node only while it is the heaviest subproblem, and
	// weights only shrink, so every internal node of the bisection tree
	// must weigh at least as much as the heaviest final part.
	p := bisect.MustSynthetic(1, 0.1, 0.5, 13)
	res, err := HF(p, 128, Options{RecordTree: true})
	if err != nil {
		t.Fatal(err)
	}
	minInternal := math.Inf(1)
	res.Tree.Walk(func(n *bistree.Node) {
		if !n.IsLeaf() && n.Weight < minInternal {
			minInternal = n.Weight
		}
	})
	if res.Max > minInternal+1e-12 {
		t.Fatalf("max part %v heavier than lightest bisected node %v", res.Max, minInternal)
	}
}

func TestHFScanMatchesHeap(t *testing.T) {
	rng := xrand.New(5)
	for trial := 0; trial < 30; trial++ {
		seed := rng.Uint64()
		n := 2 + rng.Intn(300)
		a, err := HF(bisect.MustSynthetic(1, 0.05, 0.5, seed), n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := HFScan(bisect.MustSynthetic(1, 0.05, 0.5, seed), n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !SamePartition(a, b) {
			t.Fatalf("trial %d: heap and scan HF disagree", trial)
		}
	}
}
