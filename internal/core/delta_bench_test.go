package core

import (
	"testing"

	"bisectlb/internal/bisect"
)

func BenchmarkPatchOneDirty(b *testing.B) {
	root := bisect.SyntheticFlatRoot(1, 4242)
	k := bisect.SyntheticKernel{Lo: 0.1, Hi: 0.5}
	pl := NewPlanner(2048)
	prior := &Plan{}
	if err := pl.HFInto(prior, k, root, 2048); err != nil {
		b.Fatal(err)
	}
	mean := prior.Total / float64(prior.N)
	best := -1
	for i, pt := range prior.Parts {
		if !pt.Node.Leaf && (best < 0 || pt.Node.Weight > prior.Parts[best].Node.Weight) {
			best = i
		}
	}
	deltas := []WeightDelta{{ID: prior.Parts[best].Node.ID, Factor: 10 * mean / prior.Parts[best].Node.Weight}}
	dp := NewDeltaPlanner(2048)
	pp := &PatchedPlan{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dp.PatchInto(pp, k, root, prior, deltas, PatchOptions{Alpha: 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFreshHF2048(b *testing.B) {
	root := bisect.SyntheticFlatRoot(1, 4242)
	k := bisect.SyntheticKernel{Lo: 0.1, Hi: 0.5}
	pl := NewPlanner(2048)
	plan := &Plan{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pl.HFInto(plan, k, root, 2048); err != nil {
			b.Fatal(err)
		}
	}
}
