// Package core implements the paper's load-balancing algorithms:
//
//   - HF    — the sequential Heaviest Problem First baseline (Figure 1),
//   - PHF   — the parallel HF that produces the identical partition
//     (Figure 2, Theorem 3),
//   - BA    — Best Approximation of ideal weight, the inherently parallel
//     recursive algorithm (Figure 3, Theorem 7),
//   - BA′   — the BA variant that stops at the HF weight threshold,
//     used to bootstrap PHF's free-processor management (Section 3.4),
//   - BA-HF — the hybrid (Figure 4, Theorem 8),
//
// plus goroutine-parallel executions of BA and PHF. All algorithms are
// deterministic given deterministic problems, and all return a Result with
// the quality measure of the paper (the ratio against the ideal share).
//
// Each algorithm exists in two forms. The Problem-interface form (HF, BA,
// BAHF, PHF) walks bisect.Problem values and allocates two child nodes
// per bisection; it accepts any substrate, including the FE-trees,
// quadrature regions and search frontiers that have no flat
// representation. The Planner form (HFInto, BAInto, BAHFInto, PHFInto)
// runs the same algorithms over value-type bisect.FlatNode subproblems
// split by a bisect.Kernel, with every scratch structure owned by a
// reusable Planner and the partition written into a caller-owned Plan —
// zero heap allocations per call once the buffers are warm. The two
// forms are parity-tested to produce identical partitions; DESIGN.md §10
// documents the design and the measured difference.
package core
