package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"bisectlb/internal/bisect"
	"bisectlb/internal/bounds"
)

// Errors the delta planner reports for malformed patch requests. The
// serving layer maps them to client errors (4xx), so they must wrap
// cleanly through errors.Is.
var (
	// ErrUnknownPart means a WeightDelta names an ID that is not a part
	// of the prior plan.
	ErrUnknownPart = errors.New("core: weight delta names no part of the prior plan")
	// ErrBadFactor means a WeightDelta carries a non-positive or
	// non-finite drift factor.
	ErrBadFactor = errors.New("core: drift factor must be positive and finite")
	// ErrPlanMismatch means the prior plan does not describe the given
	// problem root (different total weight, or an empty plan).
	ErrPlanMismatch = errors.New("core: prior plan does not match the problem root")
)

// WeightDelta reports observed drift on one part of a prior plan: the
// part's true load is Factor times its planned weight. Parts not named
// by any delta are assumed undrifted (factor 1). When one ID appears in
// several deltas the last one wins.
type WeightDelta struct {
	// ID is the part's node ID in the prior plan.
	ID uint64
	// Factor is the multiplicative drift: observed/planned load.
	Factor float64
}

// PatchOutcome classifies what PatchInto did.
type PatchOutcome int32

const (
	// PatchNoop: no part left the α-band; the prior plan is still valid
	// and PatchInto returned the prior *Plan itself, untouched.
	PatchNoop PatchOutcome = iota
	// PatchPatched: the dirty subtrees were re-bisected and spliced back;
	// the returned plan is dst.Plan with the Group arrays authoritative.
	PatchPatched
	// PatchFullReplan: the dirty set crossed FullReplanFrac and the plan
	// was recomputed from the root — bit-identical to a fresh plan.
	PatchFullReplan
)

// String names the outcome for logs and JSON.
func (o PatchOutcome) String() string {
	switch o {
	case PatchNoop:
		return "noop"
	case PatchPatched:
		return "patched"
	case PatchFullReplan:
		return "full_replan"
	}
	return fmt.Sprintf("PatchOutcome(%d)", int32(o))
}

// PatchOptions configures a patch. Alpha is required (the α-band and the
// fresh-replan fallback need the class parameter); everything else has a
// usable zero value.
type PatchOptions struct {
	// Alpha is the bisector class parameter of the prior plan's problem.
	Alpha float64
	// Kappa is the BA-HF cutoff parameter; read only when the prior
	// plan's algorithm is BA-HF.
	Kappa float64
	// BandHigh overrides the dirty threshold multiplier B: a part is
	// dirty when its per-processor drifted load exceeds B times the
	// drifted mean. Zero means the paper's guarantee bound for the prior
	// plan's algorithm at Alpha (floored at 2 so the LPT repair bound
	// max(B, 2−1/P) collapses to B). Values must be > 1.
	BandHigh float64
	// FullReplanFrac is the dirty drifted-weight fraction at or above
	// which PatchInto gives up on patching and replans from scratch.
	// (Weight, not count: a part is dirty only when its load exceeds
	// Band ≥ 2 times the mean, so dirty parts are always fewer than
	// N/Band — a count fraction could never reach 0.5 — while the weight
	// they carry can approach the whole plan.) Zero means 0.5; a value
	// > 1 disables the fallback.
	FullReplanFrac float64
	// SplitCap bounds the bisections spent repairing one dirty subtree.
	// Zero means 4·N+64 — far above the ~P fragments any real repair
	// needs; it exists to bound adversarial inputs, and fragments still
	// above target when it binds are counted in PatchStats.Oversize.
	SplitCap int
	// ParallelDirty is the dirty-subtree count at which the repair fans
	// out across the parallel planner's workers (when one is attached).
	// Zero means 32; negative disables the parallel path.
	ParallelDirty int
}

func (o PatchOptions) frac() float64 {
	if o.FullReplanFrac == 0 {
		return 0.5
	}
	return o.FullReplanFrac
}

func (o PatchOptions) splitCap(n int) int {
	if o.SplitCap == 0 {
		return 4*n + 64
	}
	return o.SplitCap
}

func (o PatchOptions) parallelDirty() int {
	if o.ParallelDirty == 0 {
		return 32
	}
	return o.ParallelDirty
}

// PatchStats describes what a patch did, for metrics and checkers.
type PatchStats struct {
	// Outcome classifies the patch (noop / patched / full replan).
	Outcome PatchOutcome
	// Band is the dirty threshold multiplier that was used.
	Band float64
	// DriftedTotal is the total weight after applying the deltas.
	DriftedTotal float64
	// Dirty is the number of prior parts whose drifted per-processor
	// load exceeded Band times the drifted mean and were re-bisected.
	Dirty int
	// DirtyWeight is the drifted weight those parts carry; its fraction
	// of DriftedTotal is what the full-replan fallback triggers on.
	DirtyWeight float64
	// Donors is the number of clean parts pulled into the repair pool to
	// bring its mean down to the drifted mean.
	Donors int
	// Untouched is the number of prior parts spliced through unchanged
	// (IDs and processor assignments stable; weights drifted).
	Untouched int
	// Pool is P, the processor count of the repair pool — the number of
	// single-processor groups the pool was packed into.
	Pool int
	// PoolItems is the number of nodes packed (fragments plus donors).
	PoolItems int
	// Splits is the number of bisections the repair performed.
	Splits int
	// Oversize counts pool items that remained above the bin target m
	// (indivisible leaves, or SplitCap exhaustion). When zero, the
	// patched ratio obeys the documented max(Band, 2−1/P) bound.
	Oversize int
	// OversizeLeaves counts dirty parts that could not be repaired at
	// all because their node is an indivisible leaf; they are spliced
	// through untouched and may exceed the band (a fresh plan has the
	// identical leaf, so no plan does better).
	OversizeLeaves int
	// Parallel reports whether the repair used the parallel fan-out.
	Parallel bool
}

// PatchedPlan is the result buffer of DeltaPlanner.PatchInto. Plan holds
// the spliced parts (sorted by ID, stable with the prior plan's and a
// fresh plan's IDs) with drifted weights; because a repair may place
// several nodes on one processor — something Plan.Parts cannot express —
// the parallel Group arrays are authoritative for processor accounting:
//
//	Group[i]      — the processor group part i belongs to;
//	GroupProcs[g] — the processors group g owns (ΣGroupProcs = prior N).
//
// Untouched parts are singleton groups keeping their prior processor
// counts; repair groups own exactly one processor each. Plan.Max and
// Plan.Ratio are computed over group loads, not part weights, so they
// remain comparable with a fresh plan's quality measure. Plan inside a
// PatchedPlan deliberately does not satisfy verify.CheckPlan's per-part
// processor invariants; use verify.CheckPatchEquivalence instead.
type PatchedPlan struct {
	Plan       Plan
	Group      []int32
	GroupProcs []int32
	// Stats describes the last patch written into this buffer (also set
	// on the noop path, where Plan is left untouched).
	Stats PatchStats
}

// GroupLoads appends the per-group drifted loads to dst[:0] and returns
// it: loads[g] is the summed weight of the parts in group g. Checkers
// and the serving layer use it to recompute the patched quality measure.
func (pp *PatchedPlan) GroupLoads(dst []float64) []float64 {
	dst = dst[:0]
	for range pp.GroupProcs {
		dst = append(dst, 0)
	}
	for i, pt := range pp.Plan.Parts {
		dst[pp.Group[i]] += pt.Node.Weight
	}
	return dst
}

// deltaTask is one dirty subtree handed to the repair: split nd (model
// weights) until every fragment is at most t, then scale fragments by f
// to drifted weights.
type deltaTask struct {
	nd bisect.FlatNode
	t  float64
	f  float64
}

// wcount accumulates one repair worker's counters without sharing.
type wcount struct {
	splits   int
	oversize int
}

// DeltaPlanner patches a previously computed Plan against a drifted
// weight vector instead of replanning from scratch (DESIGN.md §15). It
// wraps a sequential Planner (used to re-bisect dirty subtrees and for
// the full-replan fallback) and, optionally, the PR 7 ParallelPlanner,
// whose worker arenas the repair reuses when the dirty set is large.
//
// The patch pipeline: apply the deltas to the prior parts, flag every
// part whose per-processor load exceeds BandHigh times the drifted mean
// (the α-band dirty rule), pull in the lightest clean parts as donors
// until the pool's mean is at most the global mean, re-bisect the dirty
// subtrees until every fragment is at most the pool mean, and LPT-pack
// fragments plus donors onto the pool's processors. Untouched parts keep
// their node IDs, weights (drifted) and processor counts — the splice
// invariant that makes patched plans diffable against the prior plan.
//
// A DeltaPlanner is not safe for concurrent use; the serving layer pools
// them like Planners. The zero value is not ready — use NewDeltaPlanner.
type DeltaPlanner struct {
	pl  *Planner
	par *ParallelPlanner

	factors []float64
	inPool  []bool
	dirty   []int32
	clean   []int32
	donors  int
	tasks   []deltaTask
	frag    Plan
	order   []int32
	itemBin []int32
	binLoad []float64
	binHeap []int32
	loads   []float64
	wc      []wcount
}

// NewDeltaPlanner returns a DeltaPlanner sized for plans of about n
// parts, repairing with a private sequential Planner.
func NewDeltaPlanner(n int) *DeltaPlanner {
	return &DeltaPlanner{pl: NewPlanner(n)}
}

// SetParallel attaches a parallel planner: the full-replan fallback
// routes through it, and repairs with at least PatchOptions.ParallelDirty
// dirty subtrees fan out across its workers. nil detaches.
func (dp *DeltaPlanner) SetParallel(par *ParallelPlanner) { dp.par = par }

// SetBucketQueue selects the HF-phase queue of the wrapped planners,
// exactly as Planner.SetBucketQueue. Output is bit-identical either way.
func (dp *DeltaPlanner) SetBucketQueue(on bool) {
	dp.pl.SetBucketQueue(on)
	if dp.par != nil {
		dp.par.SetBucketQueue(on)
	}
}

// Footprint reports the bytes retained by the delta planner's own
// scratch plus its wrapped planners, for pool stewardship.
func (dp *DeltaPlanner) Footprint() int {
	f := dp.pl.Footprint() +
		cap(dp.factors)*8 + cap(dp.binLoad)*8 + cap(dp.loads)*8 +
		(cap(dp.dirty)+cap(dp.clean)+cap(dp.order)+cap(dp.itemBin)+cap(dp.binHeap))*4 +
		cap(dp.inPool) + cap(dp.tasks)*int(24+8+8) +
		cap(dp.frag.Parts)*int(48+8)
	if dp.par != nil {
		f += dp.par.Footprint()
	}
	return f
}

// patchBand returns the default dirty threshold multiplier for one
// algorithm: the paper's worst-case ratio guarantee at α (mirroring
// verify.GuaranteeBound, which core cannot import), floored at 2 so the
// LPT repair bound max(B, 2−1/P) never exceeds B.
func patchBand(alg string, alpha, kappa float64, n int) (float64, error) {
	var b float64
	switch alg {
	case "HF", "PHF":
		b = bounds.RHF(alpha)
	case "BA":
		b = bounds.BA(alpha, n)
	case "BA-HF":
		if err := bounds.ValidateKappa(kappa); err != nil {
			return 0, err
		}
		b = bounds.BAHF(alpha, kappa)
		if r := bounds.RHF(alpha); r > b {
			b = r
		}
	default:
		return 0, fmt.Errorf("core: no α-band bound for algorithm %q", alg)
	}
	if b < 2 {
		b = 2
	}
	return b, nil
}

// findPart binary-searches the ID-sorted parts for id.
func findPart(parts []FlatPart, id uint64) int {
	lo, hi := 0, len(parts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if parts[mid].Node.ID < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(parts) && parts[lo].Node.ID == id {
		return lo
	}
	return -1
}

// PatchInto patches prior against the drifted weights described by
// deltas, writing the result into dst and returning the plan to serve:
//
//   - no part left the band → the prior *Plan itself (dst untouched
//     except Stats) — the noop contract callers key caching on;
//   - dirty weight fraction ≥ FullReplanFrac → &dst.Plan holding a from-scratch
//     plan, bit-identical to planning the root fresh;
//   - otherwise → &dst.Plan holding the spliced patch, with dst.Group /
//     dst.GroupProcs describing the repair groups.
//
// root must be the same problem root prior was planned from (checked
// against prior.Total); k must be the matching kernel. The patched
// ratio obeys max(Band, 2−1/P) whenever Stats.Oversize and
// Stats.OversizeLeaves are zero — verify.CheckPatchRatio re-derives and
// checks the realized bound either way.
func (dp *DeltaPlanner) PatchInto(dst *PatchedPlan, k bisect.Kernel, root bisect.FlatNode, prior *Plan, deltas []WeightDelta, opt PatchOptions) (*Plan, PatchStats, error) {
	var zero PatchStats
	if dst == nil || prior == nil {
		return nil, zero, errors.New("core: PatchInto requires a dst buffer and a prior plan")
	}
	if err := plannerValidate(root, prior.N); err != nil {
		return nil, zero, err
	}
	if len(prior.Parts) == 0 {
		return nil, zero, fmt.Errorf("%w: prior plan has no parts", ErrPlanMismatch)
	}
	if root.Weight != prior.Total {
		return nil, zero, fmt.Errorf("%w: root weight %v vs prior total %v", ErrPlanMismatch, root.Weight, prior.Total)
	}
	if err := bounds.ValidateAlpha(opt.Alpha); err != nil {
		return nil, zero, err
	}
	band := opt.BandHigh
	if band == 0 {
		b, err := patchBand(prior.Algorithm, opt.Alpha, opt.Kappa, prior.N)
		if err != nil {
			return nil, zero, err
		}
		band = b
	} else if !(band > 1) || math.IsInf(band, 0) {
		return nil, zero, fmt.Errorf("core: BandHigh must be > 1 and finite, got %v", band)
	}

	parts := prior.Parts
	dp.factors = growF64(dp.factors, len(parts))
	for i := range dp.factors {
		dp.factors[i] = 1
	}
	for _, d := range deltas {
		if !(d.Factor > 0) || math.IsInf(d.Factor, 0) {
			return nil, zero, fmt.Errorf("%w: part %d factor %v", ErrBadFactor, d.ID, d.Factor)
		}
		i := findPart(parts, d.ID)
		if i < 0 {
			return nil, zero, fmt.Errorf("%w: id %d", ErrUnknownPart, d.ID)
		}
		dp.factors[i] = d.Factor
	}

	totalD := 0.0
	for i, pt := range parts {
		totalD += dp.factors[i] * pt.Node.Weight
	}
	meanD := totalD / float64(prior.N)
	// Tiny relative slack keeps a prior plan sitting exactly on its
	// guarantee bound from being flagged dirty by its own rounding.
	thresh := band * meanD * (1 + 1e-9)

	stats := PatchStats{Band: band, DriftedTotal: totalD}
	dp.dirty = dp.dirty[:0]
	dirtyW := 0.0
	for i, pt := range parts {
		w := dp.factors[i] * pt.Node.Weight
		if w/float64(pt.Procs) > thresh {
			if pt.Node.Leaf {
				stats.OversizeLeaves++
			} else {
				dp.dirty = append(dp.dirty, int32(i))
				dirtyW += w
			}
		}
	}
	stats.Dirty = len(dp.dirty)
	stats.DirtyWeight = dirtyW
	if len(dp.dirty) == 0 {
		stats.Outcome = PatchNoop
		stats.Untouched = len(parts)
		dst.Stats = stats
		return prior, stats, nil
	}

	if dirtyW >= opt.frac()*totalD {
		if err := dp.freshInto(&dst.Plan, k, root, prior, opt); err != nil {
			return nil, zero, err
		}
		dst.Group = growI32(dst.Group, len(dst.Plan.Parts))
		dst.GroupProcs = growI32(dst.GroupProcs, len(dst.Plan.Parts))
		for i, pt := range dst.Plan.Parts {
			dst.Group[i] = int32(i)
			dst.GroupProcs[i] = pt.Procs
		}
		stats.Outcome = PatchFullReplan
		stats.Splits = dst.Plan.Bisections
		stats.Untouched = 0
		dst.Stats = stats
		return &dst.Plan, stats, nil
	}

	// Donor selection: pool the dirty parts, then add the lightest clean
	// single-processor parts until the pool's per-processor mean is at
	// most the drifted mean (the whole plan's mean is exactly meanD when
	// processor counts sum to N, so this terminates; if clean parts run
	// out first the pool mean stays where it is and the realized bound
	// reported by the checker widens accordingly).
	dp.inPool = growBool(dp.inPool, len(parts))
	for i := range dp.inPool {
		dp.inPool[i] = false
	}
	poolW, poolP := 0.0, 0
	for _, di := range dp.dirty {
		dp.inPool[di] = true
		poolW += dp.factors[di] * parts[di].Node.Weight
		poolP += int(parts[di].Procs)
	}
	dp.clean = dp.clean[:0]
	for i, pt := range parts {
		if !dp.inPool[i] && pt.Procs == 1 {
			dp.clean = append(dp.clean, int32(i))
		}
	}
	// Only the lightest few clean parts are needed, so a min-heap pops
	// them in (load asc, ID asc) order instead of fully sorting the clean
	// set — the selected donors and their order are exactly a full sort's
	// prefix, at O(n + d·log n) instead of O(n·log n).
	cn := len(dp.clean)
	for i := cn/2 - 1; i >= 0; i-- {
		siftLoadMin(parts, dp.factors, dp.clean, i, cn)
	}
	dp.donors = 0
	heapN := cn
	for heapN > 0 && poolW > meanD*float64(poolP) {
		ci := dp.clean[0]
		heapN--
		dp.clean[0], dp.clean[heapN] = dp.clean[heapN], ci
		siftLoadMin(parts, dp.factors, dp.clean, 0, heapN)
		dp.inPool[ci] = true
		poolW += dp.factors[ci] * parts[ci].Node.Weight
		poolP++
		dp.donors++
	}
	stats.Donors = dp.donors
	stats.Pool = poolP
	m := poolW / float64(poolP)

	// Repair: split every dirty subtree until its fragments' drifted
	// weights are at most the bin target m. Within one prior part the
	// drift factor is a single scalar, so the split runs on model
	// weights against the model threshold m/f and scales the fragments
	// afterwards — the kernels conserve weight bitwise, so this is exact.
	limit := opt.splitCap(prior.N)
	dp.tasks = dp.tasks[:0]
	for _, di := range dp.dirty {
		f := dp.factors[di]
		dp.tasks = append(dp.tasks, deltaTask{nd: parts[di].Node, t: m / f, f: f})
	}
	dp.frag.Parts = dp.frag.Parts[:0]
	pd := opt.parallelDirty()
	if dp.par != nil && pd > 0 && len(dp.tasks) >= pd && dp.par.opt.workers() >= 2 {
		dp.splitParallel(k, limit, &stats)
	} else {
		for _, t := range dp.tasks {
			start := len(dp.frag.Parts)
			s, ov := dp.pl.thresholdExpand(&dp.frag, k, t.nd, t.t, limit)
			stats.Splits += s
			stats.Oversize += ov
			for j := start; j < len(dp.frag.Parts); j++ {
				dp.frag.Parts[j].Node.Weight *= t.f
			}
		}
	}
	for i := 0; i < dp.donors; i++ {
		di := dp.clean[cn-1-i] // pop order: lightest donor first
		nd := parts[di].Node
		nd.Weight *= dp.factors[di]
		dp.frag.Parts = append(dp.frag.Parts, FlatPart{Node: nd, Procs: 1})
	}
	items := dp.frag.Parts
	stats.PoolItems = len(items)

	// LPT packing: items heaviest-first into the least-loaded of P
	// single-processor bins (min-heap keyed load-then-index, so ties are
	// deterministic). With every item at most m this bounds the heaviest
	// bin by (2−1/P)·m ≤ Band·mean; the general greedy bound mean+max
	// holds regardless and is what CheckPatchRatio verifies.
	P := poolP
	dp.order = growI32(dp.order, len(items))
	for i := range dp.order {
		dp.order[i] = int32(i)
	}
	sortIdxByItemWeightDesc(items, dp.order)
	dp.binLoad = growF64(dp.binLoad, P)
	dp.binHeap = growI32(dp.binHeap, P)
	for i := 0; i < P; i++ {
		dp.binLoad[i] = 0
		dp.binHeap[i] = int32(i)
	}
	dp.itemBin = growI32(dp.itemBin, len(items))
	for _, oi := range dp.order {
		b := dp.binHeap[0]
		dp.itemBin[oi] = b
		dp.binLoad[b] += items[oi].Node.Weight
		siftBinDown(dp.binLoad, dp.binHeap, 0)
	}

	// Splice: untouched parts pass through with drifted weights as
	// singleton groups (stable IDs, stable processor counts), then the
	// pool items land in their bins' groups. The untouched parts inherit
	// the prior plan's canonical ascending-ID order, so merging them with
	// the ID-sorted items restores the canonical order in O(n + i·log i)
	// instead of re-sorting the whole plan.
	dst.Plan.reset(prior.Algorithm+"+patch", prior.N, totalD)
	gp := dst.GroupProcs[:0]
	for i, pt := range parts {
		if dp.inPool[i] {
			continue
		}
		nd := pt.Node
		nd.Weight *= dp.factors[i]
		dst.Plan.Parts = append(dst.Plan.Parts, FlatPart{Node: nd, Procs: pt.Procs})
		gp = append(gp, pt.Procs)
	}
	u := len(gp)
	stats.Untouched = u
	for b := 0; b < P; b++ {
		gp = append(gp, 1)
	}
	dst.GroupProcs = gp

	// dp.order is free again after the LPT pass; reuse it for the item ID
	// order, then merge backwards (reads of the untouched prefix stay
	// ahead of the write cursor, so the merge is in place).
	for i := range dp.order {
		dp.order[i] = int32(i)
	}
	sortIdxByItemIDAsc(items, dp.order)
	total := u + len(items)
	dst.Plan.Parts = append(dst.Plan.Parts, items...)
	grp := growI32(dst.Group, total)
	pi, j := u-1, len(items)-1
	for w := total - 1; w >= 0; w-- {
		if j < 0 || (pi >= 0 && dst.Plan.Parts[pi].Node.ID > items[dp.order[j]].Node.ID) {
			dst.Plan.Parts[w] = dst.Plan.Parts[pi]
			grp[w] = int32(pi)
			pi--
		} else {
			oi := dp.order[j]
			dst.Plan.Parts[w] = items[oi]
			grp[w] = int32(u) + dp.itemBin[oi]
			j--
		}
	}
	dst.Group = grp

	// Summary over group loads, so Max/Ratio stay comparable with a
	// fresh plan's quality measure.
	dp.loads = dst.GroupLoads(dp.loads)
	maxL := 0.0
	for _, l := range dp.loads {
		if l > maxL {
			maxL = l
		}
	}
	maxD := int32(0)
	for _, pt := range dst.Plan.Parts {
		if pt.Node.Depth > maxD {
			maxD = pt.Node.Depth
		}
	}
	dst.Plan.Max = maxL
	dst.Plan.MaxDepth = int(maxD)
	dst.Plan.Ratio = bisect.Ratio(maxL, totalD, prior.N)
	dst.Plan.Bisections = stats.Splits
	stats.Outcome = PatchPatched
	dst.Stats = stats
	return &dst.Plan, stats, nil
}

// freshInto recomputes the plan from the root with the prior plan's
// algorithm — the full-replan fallback. It routes through the attached
// parallel planner when present (which itself falls back sequentially
// for HF/PHF and small plans), so the output is bit-identical to a
// fresh plan either way.
func (dp *DeltaPlanner) freshInto(plan *Plan, k bisect.Kernel, root bisect.FlatNode, prior *Plan, opt PatchOptions) error {
	n := prior.N
	switch prior.Algorithm {
	case "HF":
		if dp.par != nil {
			return dp.par.HFInto(plan, k, root, n)
		}
		return dp.pl.HFInto(plan, k, root, n)
	case "PHF":
		if dp.par != nil {
			return dp.par.PHFInto(plan, k, root, n, opt.Alpha)
		}
		return dp.pl.PHFInto(plan, k, root, n, opt.Alpha)
	case "BA":
		if dp.par != nil {
			return dp.par.BAInto(plan, k, root, n)
		}
		return dp.pl.BAInto(plan, k, root, n)
	case "BA-HF":
		if dp.par != nil {
			return dp.par.BAHFInto(plan, k, root, n, opt.Alpha, opt.Kappa)
		}
		return dp.pl.BAHFInto(plan, k, root, n, opt.Alpha, opt.Kappa)
	default:
		return fmt.Errorf("core: cannot replan algorithm %q", prior.Algorithm)
	}
}

// splitParallel fans the dirty-subtree repairs out across the attached
// parallel planner's workers with the same atomic-cursor discipline as
// planInto. Fragment order differs from the sequential path but the
// LPT sort and the final ID sort are total orders over unique IDs, so
// the patched plan is bit-identical either way (pinned by
// TestPatchParityAcrossConfigs).
func (dp *DeltaPlanner) splitParallel(k bisect.Kernel, limit int, stats *PatchStats) {
	w := dp.par.opt.workers()
	dp.par.ensureWorkers(w)
	active := dp.par.workers[:w]
	if cap(dp.wc) < w {
		dp.wc = make([]wcount, w)
	}
	dp.wc = dp.wc[:w]
	for i := range dp.wc {
		dp.wc[i] = wcount{}
	}
	for _, pw := range active {
		pw.plan.Parts = pw.plan.Parts[:0]
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for wi, pw := range active {
		wg.Add(1)
		go func(wi int, pw *pworker) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(dp.tasks) {
					return
				}
				t := dp.tasks[i]
				start := len(pw.plan.Parts)
				s, ov := pw.pl.thresholdExpand(&pw.plan, k, t.nd, t.t, limit)
				for j := start; j < len(pw.plan.Parts); j++ {
					pw.plan.Parts[j].Node.Weight *= t.f
				}
				dp.wc[wi].splits += s
				dp.wc[wi].oversize += ov
			}
		}(wi, pw)
	}
	wg.Wait()
	for wi, pw := range active {
		dp.frag.Parts = append(dp.frag.Parts, pw.plan.Parts...)
		stats.Splits += dp.wc[wi].splits
		stats.Oversize += dp.wc[wi].oversize
	}
	stats.Parallel = true
}

// thresholdExpand splits nd depth-first until every fragment weighs at
// most t, appending fragments to plan.Parts (Procs 1) and returning the
// bisection count plus the number of fragments still above t
// (indivisible leaves, or the split limit binding). Unlike hfExpandHeap
// the stopping rule is a weight threshold, not a part count, so the
// fragment set is independent of expansion order — what makes the
// repair's parallel fan-out bit-identical to the sequential path.
func (pl *Planner) thresholdExpand(plan *Plan, k bisect.Kernel, nd bisect.FlatNode, t float64, limit int) (splits, oversize int) {
	pl.stack = append(pl.stack[:0], baFrame{nd, 1})
	for len(pl.stack) > 0 {
		fr := pl.stack[len(pl.stack)-1]
		pl.stack = pl.stack[:len(pl.stack)-1]
		if fr.nd.Weight <= t || fr.nd.Leaf || splits >= limit {
			if fr.nd.Weight > t {
				oversize++
			}
			plan.Parts = append(plan.Parts, FlatPart{Node: fr.nd, Procs: 1})
			continue
		}
		c1, c2 := k.Split(fr.nd)
		splits++
		pl.stack = append(pl.stack, baFrame{c2, 1}, baFrame{c1, 1})
	}
	return splits, oversize
}

// growF64 and friends resize scratch slices without reallocating when
// capacity suffices.
func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// loadLess orders ascending drifted per-proc load, then ascending ID —
// the donor selection order. siftLoadMin maintains a min-heap of that
// order so the donor loop pops the lightest clean part in O(log n)
// without sorting the full clean set.
func loadLess(parts []FlatPart, factors []float64, a, b int32) bool {
	la := factors[a] * parts[a].Node.Weight / float64(parts[a].Procs)
	lb := factors[b] * parts[b].Node.Weight / float64(parts[b].Procs)
	if la != lb {
		return la < lb
	}
	return parts[a].Node.ID < parts[b].Node.ID
}

func siftLoadMin(parts []FlatPart, factors []float64, idx []int32, i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		small := l
		if r := l + 1; r < n && loadLess(parts, factors, idx[r], idx[l]) {
			small = r
		}
		if !loadLess(parts, factors, idx[small], idx[i]) {
			return
		}
		idx[i], idx[small] = idx[small], idx[i]
		i = small
	}
}

// sortIdxByItemWeightDesc heap-sorts idx so the referenced items come
// heaviest first, ties broken by smaller ID — the LPT packing order.
func sortIdxByItemWeightDesc(items []FlatPart, idx []int32) {
	n := len(idx)
	for i := n/2 - 1; i >= 0; i-- {
		siftItem(items, idx, i, n)
	}
	for end := n - 1; end > 0; end-- {
		idx[0], idx[end] = idx[end], idx[0]
		siftItem(items, idx, 0, end)
	}
}

// itemLess orders descending weight then ascending ID; siftItem builds a
// min-heap of that order so the heapsort leaves idx heaviest-first.
func itemLess(items []FlatPart, a, b int32) bool {
	if items[a].Node.Weight != items[b].Node.Weight {
		return items[a].Node.Weight > items[b].Node.Weight
	}
	return items[a].Node.ID < items[b].Node.ID
}

func siftItem(items []FlatPart, idx []int32, i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		last := l
		if r := l + 1; r < n && itemLess(items, idx[l], idx[r]) {
			last = r
		}
		if !itemLess(items, idx[i], idx[last]) {
			return
		}
		idx[i], idx[last] = idx[last], idx[i]
		i = last
	}
}

// siftBinDown restores the min-heap property of the bin heap at i; the
// heap orders bins by (load asc, index asc) so LPT tie-breaks are
// deterministic.
func siftBinDown(load []float64, heap []int32, i int) {
	n := len(heap)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		small := l
		if r := l + 1; r < n && binLess(load, heap[r], heap[l]) {
			small = r
		}
		if !binLess(load, heap[small], heap[i]) {
			return
		}
		heap[i], heap[small] = heap[small], heap[i]
		i = small
	}
}

func binLess(load []float64, a, b int32) bool {
	if load[a] != load[b] {
		return load[a] < load[b]
	}
	return a < b
}

// sortIdxByItemIDAsc heap-sorts idx so the referenced items come in
// ascending ID order — the canonical part order the splice merge
// interleaves with the untouched prefix.
func sortIdxByItemIDAsc(items []FlatPart, idx []int32) {
	n := len(idx)
	for i := n/2 - 1; i >= 0; i-- {
		siftItemID(items, idx, i, n)
	}
	for end := n - 1; end > 0; end-- {
		idx[0], idx[end] = idx[end], idx[0]
		siftItemID(items, idx, 0, end)
	}
}

func siftItemID(items []FlatPart, idx []int32, i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		big := l
		if r := l + 1; r < n && items[idx[r]].Node.ID > items[idx[l]].Node.ID {
			big = r
		}
		if items[idx[big]].Node.ID <= items[idx[i]].Node.ID {
			return
		}
		idx[i], idx[big] = idx[big], idx[i]
		i = big
	}
}
