package core

import (
	"math"
	"testing"
	"testing/quick"

	"bisectlb/internal/bisect"
	"bisectlb/internal/bounds"
	"bisectlb/internal/xrand"
)

// TestPHFEquivalence is the executable Theorem 3: PHF computes exactly the
// partition of HF, across α intervals, processor counts and seeds.
func TestPHFEquivalence(t *testing.T) {
	intervals := [][2]float64{{0.01, 0.5}, {0.1, 0.5}, {0.05, 0.1}, {0.3, 0.3}, {0.5, 0.5}}
	ns := []int{1, 2, 3, 7, 32, 100, 1000}
	for _, iv := range intervals {
		for _, n := range ns {
			for seed := uint64(0); seed < 5; seed++ {
				hf, err := HF(bisect.MustSynthetic(1, iv[0], iv[1], seed), n, Options{})
				if err != nil {
					t.Fatal(err)
				}
				phf, err := PHF(bisect.MustSynthetic(1, iv[0], iv[1], seed), n, iv[0], Options{})
				if err != nil {
					t.Fatal(err)
				}
				if !SamePartition(hf, &phf.Result) {
					t.Fatalf("interval %v n=%d seed=%d: PHF != HF (hf max %v, phf max %v)",
						iv, n, seed, hf.Max, phf.Max)
				}
			}
		}
	}
}

func TestPHFEquivalenceQuick(t *testing.T) {
	rng := xrand.New(7)
	f := func(seed uint64) bool {
		rng.Reseed(seed)
		lo := rng.InRange(0.02, 0.45)
		hi := rng.InRange(lo, 0.5)
		n := 1 + rng.Intn(800)
		hf, err := HF(bisect.MustSynthetic(1, lo, hi, seed), n, Options{})
		if err != nil {
			return false
		}
		phf, err := PHF(bisect.MustSynthetic(1, lo, hi, seed), n, lo, Options{})
		if err != nil {
			return false
		}
		return SamePartition(hf, &phf.Result)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPHFEquivalenceOnLists(t *testing.T) {
	// The identity must also hold on a substrate with indivisible atoms.
	for seed := uint64(0); seed < 10; seed++ {
		hf, err := HF(bisect.MustList(5000, 0.15, seed), 64, Options{})
		if err != nil {
			t.Fatal(err)
		}
		phf, err := PHF(bisect.MustList(5000, 0.15, seed), 64, 0.15, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !SamePartition(hf, &phf.Result) {
			t.Fatalf("seed %d: PHF != HF on list substrate", seed)
		}
	}
}

func TestPHFPhaseAccounting(t *testing.T) {
	alpha := 0.1
	n := 1024
	phf, err := PHF(bisect.MustSynthetic(1, alpha, 0.5, 3), n, alpha, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if phf.Phase1Bisections+phf.Phase2Bisections != phf.Bisections {
		t.Fatal("phase bisections do not sum")
	}
	if phf.Bisections != n-1 {
		t.Fatalf("bisections = %d, want %d", phf.Bisections, n-1)
	}
	if phf.Phase1Rounds > bounds.PHFPhase1Depth(alpha, n) {
		t.Fatalf("phase-1 rounds %d exceed depth bound %d",
			phf.Phase1Rounds, bounds.PHFPhase1Depth(alpha, n))
	}
	// Paper: I ≤ (1/α)·ln(1/α) iterations suffice; allow the +1 slack of
	// the discrete loop.
	limit := bounds.PHFPhase2Iterations(alpha) + 1
	if phf.Phase2Iterations > limit {
		t.Fatalf("phase-2 iterations %d exceed bound %d", phf.Phase2Iterations, limit)
	}
	if phf.ModelTime <= 0 || phf.GlobalOps <= 0 {
		t.Fatal("model accounting missing")
	}
}

func TestPHFThresholdSemantics(t *testing.T) {
	alpha := 0.2
	n := 256
	phf, err := PHF(bisect.MustSynthetic(1, alpha, 0.5, 5), n, alpha, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := bounds.HFThreshold(1, alpha, n)
	if math.Abs(phf.Threshold-want) > 1e-12 {
		t.Fatalf("threshold %v, want %v", phf.Threshold, want)
	}
	// Theorem 2 through the PHF path: the final max is at or below the
	// threshold.
	if phf.Max > phf.Threshold+1e-12 {
		t.Fatalf("max %v exceeds threshold %v", phf.Max, phf.Threshold)
	}
}

func TestPHFModelTimeLogarithmic(t *testing.T) {
	// For fixed α the model running time must grow O(log N): going from
	// N=2^10 to N=2^16 may only add a constant factor ≈ 1.6 plus slack,
	// nothing close to the 64× a linear algorithm would show.
	alpha := 0.25
	t10, err := PHF(bisect.MustSynthetic(1, alpha, 0.5, 1), 1<<10, alpha, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t16, err := PHF(bisect.MustSynthetic(1, alpha, 0.5, 1), 1<<16, alpha, Options{})
	if err != nil {
		t.Fatal(err)
	}
	growth := float64(t16.ModelTime) / float64(t10.ModelTime)
	if growth > 4 {
		t.Fatalf("model time grew %vx from 2^10 to 2^16 — not O(log N)", growth)
	}
}

func TestPHFErrors(t *testing.T) {
	p := bisect.MustSynthetic(1, 0.1, 0.5, 1)
	if _, err := PHF(nil, 4, 0.1, Options{}); err == nil {
		t.Fatal("nil problem accepted")
	}
	if _, err := PHF(p, 0, 0.1, Options{}); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := PHF(p, 4, 0, Options{}); err == nil {
		t.Fatal("α=0 accepted")
	}
	if _, err := PHF(p, 4, 0.7, Options{}); err == nil {
		t.Fatal("α=0.7 accepted")
	}
}

func TestPHFMisdeclaredAlphaDegradesGracefully(t *testing.T) {
	// Declare α=0.45 for a class that actually only guarantees 0.05: PHF
	// may lose the HF identity but must still emit a valid ≤n partition.
	p := bisect.MustSynthetic(1, 0.05, 0.5, 9)
	phf, err := PHF(p, 64, 0.45, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := phf.CheckPartition(1e-9); err != nil {
		t.Fatal(err)
	}
	if len(phf.Parts) > 64 {
		t.Fatalf("%d parts exceed processor count", len(phf.Parts))
	}
}

func TestPHFSingleProcessor(t *testing.T) {
	phf, err := PHF(bisect.MustSynthetic(1, 0.1, 0.5, 2), 1, 0.1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(phf.Parts) != 1 || phf.Bisections != 0 {
		t.Fatalf("parts=%d bisections=%d", len(phf.Parts), phf.Bisections)
	}
}

func TestPHFTreeRecording(t *testing.T) {
	phf, err := PHF(bisect.MustSynthetic(1, 0.1, 0.5, 21), 128, 0.1, Options{RecordTree: true})
	if err != nil {
		t.Fatal(err)
	}
	if phf.Tree == nil || phf.Tree.NumLeaves() != 128 {
		t.Fatal("PHF tree recording broken")
	}
	if err := phf.Tree.CheckInvariants(1e-9); err != nil {
		t.Fatal(err)
	}
}
