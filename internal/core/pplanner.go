package core

import (
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"bisectlb/internal/bisect"
	"bisectlb/internal/bounds"
	"bisectlb/internal/obs"
)

// Metric names recorded by ParallelPlanner when ParallelOptions.Metrics
// is set.
const (
	mPPlanTasks      = "core.pplan.tasks"
	mPPlanSpawns     = "core.pplan.goroutine_spawns"
	mPPlanWallNs     = "core.pplan.wall_ns"
	mPPlanSeqFalls   = "core.pplan.sequential_fallbacks"
	mPPlanBisections = "core.pplan.bisections"
)

// subtreeTask is one independent subtree handed to a worker: plan nd
// into at most procs parts. The cutoff travels per call, not per task,
// because every task of one plan shares the algorithm's κ/α threshold.
type subtreeTask struct {
	nd    bisect.FlatNode
	procs int32
}

// pworker is one worker's private state: a full sequential Planner (its
// own arena, queue and stack — nothing shared, so no synchronisation on
// the hot path) plus a Plan used purely as a parts accumulator.
type pworker struct {
	pl   Planner
	plan Plan
	bis  int
}

// ParallelPlanner plans partitions across GOMAXPROCS-style worker
// goroutines while producing output bit-identical to the sequential
// Planner (pinned by TestParallelPlannerParity under -race).
//
// The decomposition exploits the structure of Algorithm BA (paper
// Figure 3): after a bisection the two recursive calls are independent —
// "these recursive calls can be executed in parallel on different
// processors" — so the planner expands the top of the recursion tree
// sequentially until every pending subtree holds at most grain
// processors, then fans those subtrees out as tasks over a dynamic
// (atomic-cursor) work queue. Each worker plans its subtrees with a
// private sequential Planner; the merge concatenates per-worker parts in
// worker order and finalize sorts by unique node ID, so the result is
// independent of the task→worker assignment and identical to the
// sequential plan part for part.
//
// Algorithm HF has no such decomposition: its queue is global, and which
// subproblem is bisected next depends on every part planned so far, so
// any subtree split changes the output. HFInto therefore falls back to
// the sequential planner (use SetBucketQueue to at least cut its
// per-operation constant); BA-HF gets true parallelism because its HF
// phases are confined to independent subtrees by construction. PHFInto
// likewise delegates to the sequential flat planner — ParallelPHF covers
// the round-synchronous execution model for the interface substrate.
//
// A ParallelPlanner is not safe for concurrent use; the serving layer
// pools whole ParallelPlanners the way it pools Planners. At steady
// state each worker plans with zero heap allocations
// (TestParallelPlannerWorkerAllocationFree); the per-call goroutine
// spawns are the only allocations that remain.
type ParallelPlanner struct {
	opt       ParallelOptions
	seq       Planner
	workers   []*pworker
	tasks     []subtreeTask
	stack     []baFrame
	useBucket bool
}

// NewParallelPlanner returns a planner for plans of about n parts using
// the given options (zero Workers means GOMAXPROCS; see ParallelOptions).
func NewParallelPlanner(n int, opt ParallelOptions) *ParallelPlanner {
	pp := &ParallelPlanner{opt: opt, seq: *NewPlanner(n)}
	pp.ensureWorkers(opt.workers())
	return pp
}

// Options returns the planner's parallel options.
func (pp *ParallelPlanner) Options() ParallelOptions { return pp.opt }

// SetMetrics points the planner's instrumentation at reg (nil disables).
func (pp *ParallelPlanner) SetMetrics(reg *obs.Registry) { pp.opt.Metrics = reg }

// SetBucketQueue selects the HF-phase queue for the sequential fallback
// and every worker, exactly as Planner.SetBucketQueue does. Output is
// bit-identical either way.
func (pp *ParallelPlanner) SetBucketQueue(on bool) {
	pp.useBucket = on
	pp.seq.SetBucketQueue(on)
	for _, pw := range pp.workers {
		pw.pl.SetBucketQueue(on)
	}
}

// BucketQueueEnabled reports which queue the HF phases use.
func (pp *ParallelPlanner) BucketQueueEnabled() bool { return pp.useBucket }

// Footprint reports the total bytes retained across the sequential
// fallback planner, every worker's planner and parts buffer, and the
// task queue. Pool stewards cap it like Planner.Footprint.
func (pp *ParallelPlanner) Footprint() int {
	f := pp.seq.Footprint() +
		cap(pp.tasks)*int(unsafe.Sizeof(subtreeTask{})) +
		cap(pp.stack)*int(unsafe.Sizeof(baFrame{}))
	for _, pw := range pp.workers {
		f += pw.pl.Footprint() + cap(pw.plan.Parts)*int(unsafe.Sizeof(FlatPart{}))
	}
	return f
}

func (pp *ParallelPlanner) ensureWorkers(w int) {
	for len(pp.workers) < w {
		pw := &pworker{}
		pw.pl.SetBucketQueue(pp.useBucket)
		pp.workers = append(pp.workers, pw)
	}
}

// BAInto runs Algorithm BA over the flat substrate k with worker
// goroutines, writing a partition bit-identical to Planner.BAInto's.
func (pp *ParallelPlanner) BAInto(plan *Plan, k bisect.Kernel, root bisect.FlatNode, n int) error {
	if err := plannerValidate(root, n); err != nil {
		return err
	}
	plan.reset("BA", n, root.Weight)
	pp.planInto(plan, k, root, n, 0)
	return nil
}

// BAHFInto runs Algorithm BA-HF over the flat substrate k with worker
// goroutines, writing a partition bit-identical to Planner.BAHFInto's.
// The HF finishing phases below the κ/α+1 cutoff are confined to
// independent subtrees, so they parallelise with the subtrees.
func (pp *ParallelPlanner) BAHFInto(plan *Plan, k bisect.Kernel, root bisect.FlatNode, n int, alpha, kappa float64) error {
	if err := plannerValidate(root, n); err != nil {
		return err
	}
	if err := bounds.ValidateAlpha(alpha); err != nil {
		return err
	}
	if err := bounds.ValidateKappa(kappa); err != nil {
		return err
	}
	plan.reset("BA-HF", n, root.Weight)
	pp.planInto(plan, k, root, n, kappa/alpha+1)
	return nil
}

// HFInto runs Algorithm HF sequentially — HF's global heaviest-first
// queue admits no bit-identical subtree decomposition (see the type
// comment) — reusing the planner's sequential fallback buffers.
func (pp *ParallelPlanner) HFInto(plan *Plan, k bisect.Kernel, root bisect.FlatNode, n int) error {
	pp.opt.Metrics.Counter(mPPlanSeqFalls).Add(1)
	return pp.seq.HFInto(plan, k, root, n)
}

// PHFInto runs the logical Algorithm PHF sequentially via the fallback
// planner; use ParallelPHF for the round-synchronous execution model.
func (pp *ParallelPlanner) PHFInto(plan *Plan, k bisect.Kernel, root bisect.FlatNode, n int, alpha float64) error {
	pp.opt.Metrics.Counter(mPPlanSeqFalls).Add(1)
	return pp.seq.PHFInto(plan, k, root, n, alpha)
}

// grain returns the largest processor count a subtree may hold and still
// become a worker task: at least the spawn threshold (tiny tasks cost
// more to dispatch than to plan), and at most n/(8·workers) so the
// dynamic queue holds ~8 tasks per worker — enough slack for the
// heaviest-subtree skew BA's weight-proportional splitting produces.
func (pp *ParallelPlanner) grain(n, w int) int {
	g := pp.opt.spawnThreshold()
	if byWork := n / (8 * w); byWork > g {
		g = byWork
	}
	return g
}

// planInto is the shared BA/BA-HF engine: sequential top expansion,
// parallel subtree planning, deterministic merge.
func (pp *ParallelPlanner) planInto(plan *Plan, k bisect.Kernel, root bisect.FlatNode, n int, cutoff float64) {
	w := pp.opt.workers()
	grain := pp.grain(n, w)
	if w < 2 || n <= grain {
		// One worker (or a plan too small to split): the parallel
		// machinery would only add overhead. Same output by definition.
		pp.opt.Metrics.Counter(mPPlanSeqFalls).Add(1)
		plan.finalize(pp.seq.baExpand(plan, k, root, int32(n), cutoff))
		return
	}
	wallStart := time.Now()

	pp.tasks = pp.tasks[:0]
	bis := pp.expandTop(plan, k, root, int32(n), cutoff, int32(grain))

	pp.ensureWorkers(w)
	active := pp.workers[:w]
	for _, pw := range active {
		pw.plan.Parts = pw.plan.Parts[:0]
		pw.bis = 0
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for _, pw := range active {
		wg.Add(1)
		go func(pw *pworker) {
			defer wg.Done()
			pp.runWorker(pw, k, cutoff, &next)
		}(pw)
	}
	wg.Wait()

	// Deterministic merge: concatenation order is worker order, but the
	// part set is independent of the task→worker assignment and finalize
	// sorts by unique node ID, so the assembled plan is bit-identical to
	// the sequential one regardless of scheduling.
	for _, pw := range active {
		plan.Parts = append(plan.Parts, pw.plan.Parts...)
		bis += pw.bis
	}

	pp.opt.Metrics.Counter(mPPlanTasks).Add(int64(len(pp.tasks)))
	pp.opt.Metrics.Counter(mPPlanSpawns).Add(int64(w))
	pp.opt.Metrics.Counter(mPPlanBisections).Add(int64(bis))
	pp.opt.Metrics.Histogram(mPPlanWallNs).ObserveSince(wallStart)
	plan.finalize(bis)
}

// expandTop mirrors Planner.baExpand but stops at subtrees of at most
// grain processors (or below the BA-HF cutoff), pushing them as tasks
// instead of planning them. Leaves and single-processor frames reached
// near the root become parts of plan directly. Returns the top-level
// bisection count.
func (pp *ParallelPlanner) expandTop(plan *Plan, k bisect.Kernel, nd bisect.FlatNode, procs int32, cutoff float64, grain int32) int {
	bisections := 0
	pp.stack = append(pp.stack[:0], baFrame{nd, procs})
	for len(pp.stack) > 0 {
		fr := pp.stack[len(pp.stack)-1]
		pp.stack = pp.stack[:len(pp.stack)-1]
		if fr.procs == 1 || fr.nd.Leaf {
			plan.Parts = append(plan.Parts, FlatPart{Node: fr.nd, Procs: fr.procs})
			continue
		}
		if fr.procs <= grain || float64(fr.procs) < cutoff {
			pp.tasks = append(pp.tasks, subtreeTask{fr.nd, fr.procs})
			continue
		}
		c1, c2 := k.Split(fr.nd)
		bisections++
		if c1.Weight < c2.Weight {
			c1, c2 = c2, c1
		}
		n1, n2 := SplitProcs(c1.Weight, c2.Weight, int(fr.procs))
		pp.stack = append(pp.stack, baFrame{c2, int32(n2)}, baFrame{c1, int32(n1)})
	}
	return bisections
}

// runWorker drains the task queue through one worker: the atomic cursor
// hands out tasks dynamically so a worker that draws light subtrees
// takes more of them. Each task runs the identical baExpand the
// sequential planner uses, against worker-private buffers.
func (pp *ParallelPlanner) runWorker(pw *pworker, k bisect.Kernel, cutoff float64, next *atomic.Int64) {
	for {
		i := int(next.Add(1)) - 1
		if i >= len(pp.tasks) {
			return
		}
		t := pp.tasks[i]
		pw.bis += pw.pl.baExpand(&pw.plan, k, t.nd, t.procs, cutoff)
	}
}
