package core

import (
	"testing"

	"bisectlb/internal/bisect"
	"bisectlb/internal/xrand"
)

func TestParallelBAMatchesBA(t *testing.T) {
	rng := xrand.New(61)
	for trial := 0; trial < 25; trial++ {
		seed := rng.Uint64()
		n := 1 + rng.Intn(2000)
		seq, err := BA(bisect.MustSynthetic(1, 0.05, 0.5, seed), n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		par, err := ParallelBA(bisect.MustSynthetic(1, 0.05, 0.5, seed), n, ParallelOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !SamePartition(seq, par) {
			t.Fatalf("trial %d (n=%d): parallel BA differs from BA", trial, n)
		}
		if par.Bisections != seq.Bisections {
			t.Fatalf("trial %d: bisections %d vs %d", trial, par.Bisections, seq.Bisections)
		}
	}
}

func TestParallelBASpawnThresholds(t *testing.T) {
	seed := uint64(5)
	n := 777
	want, err := BA(bisect.MustSynthetic(1, 0.1, 0.5, seed), n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, thr := range []int{1, 2, 16, 100000} {
		got, err := ParallelBA(bisect.MustSynthetic(1, 0.1, 0.5, seed), n,
			ParallelOptions{SpawnThreshold: thr})
		if err != nil {
			t.Fatal(err)
		}
		if !SamePartition(want, got) {
			t.Fatalf("spawn threshold %d changed the partition", thr)
		}
	}
}

func TestParallelBAIndivisible(t *testing.T) {
	res, err := ParallelBA(bisect.MustList(6, 0.2, 9), 64, ParallelOptions{SpawnThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) > 6 {
		t.Fatalf("%d parts from 6 elements", len(res.Parts))
	}
	procs := 0
	for _, pt := range res.Parts {
		procs += pt.Procs
	}
	if procs != 64 {
		t.Fatalf("processors lost: %d", procs)
	}
}

func TestParallelBAErrors(t *testing.T) {
	if _, err := ParallelBA(nil, 4, ParallelOptions{}); err == nil {
		t.Fatal("nil accepted")
	}
	p := bisect.MustSynthetic(1, 0.1, 0.5, 1)
	if _, err := ParallelBA(p, 0, ParallelOptions{}); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestParallelPHFMatchesHF(t *testing.T) {
	intervals := [][2]float64{{0.05, 0.5}, {0.1, 0.5}, {0.3, 0.3}}
	ns := []int{1, 2, 7, 64, 500}
	workers := []int{1, 3, 8}
	for _, iv := range intervals {
		for _, n := range ns {
			for _, w := range workers {
				seed := uint64(n*1000 + w)
				hf, err := HF(bisect.MustSynthetic(1, iv[0], iv[1], seed), n, Options{})
				if err != nil {
					t.Fatal(err)
				}
				par, err := ParallelPHF(bisect.MustSynthetic(1, iv[0], iv[1], seed), n, iv[0],
					ParallelOptions{Workers: w})
				if err != nil {
					t.Fatal(err)
				}
				if !SamePartition(hf, &par.Result) {
					t.Fatalf("iv=%v n=%d workers=%d: ParallelPHF != HF", iv, n, w)
				}
			}
		}
	}
}

func TestParallelPHFMatchesSequentialPHF(t *testing.T) {
	rng := xrand.New(71)
	for trial := 0; trial < 15; trial++ {
		seed := rng.Uint64()
		n := 1 + rng.Intn(600)
		seq, err := PHF(bisect.MustSynthetic(1, 0.1, 0.5, seed), n, 0.1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		par, err := ParallelPHF(bisect.MustSynthetic(1, 0.1, 0.5, seed), n, 0.1,
			ParallelOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !SamePartition(&seq.Result, &par.Result) {
			t.Fatalf("trial %d (n=%d): parallel PHF differs from sequential", trial, n)
		}
		if par.Phase1Bisections+par.Phase2Bisections != seq.Bisections {
			t.Fatalf("trial %d: bisection accounting differs (%d+%d vs %d)",
				trial, par.Phase1Bisections, par.Phase2Bisections, seq.Bisections)
		}
	}
}

func TestParallelPHFOnLists(t *testing.T) {
	hf, err := HF(bisect.MustList(2000, 0.2, 17), 64, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParallelPHF(bisect.MustList(2000, 0.2, 17), 64, 0.2, ParallelOptions{Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !SamePartition(hf, &par.Result) {
		t.Fatal("ParallelPHF != HF on list substrate")
	}
}

func TestParallelPHFWorkerClamping(t *testing.T) {
	// More workers than processors must clamp, not deadlock.
	par, err := ParallelPHF(bisect.MustSynthetic(1, 0.2, 0.5, 2), 3, 0.2,
		ParallelOptions{Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Parts) != 3 {
		t.Fatalf("parts = %d", len(par.Parts))
	}
}

func TestParallelPHFErrors(t *testing.T) {
	p := bisect.MustSynthetic(1, 0.1, 0.5, 1)
	if _, err := ParallelPHF(nil, 4, 0.1, ParallelOptions{}); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := ParallelPHF(p, 0, 0.1, ParallelOptions{}); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := ParallelPHF(p, 4, 0.9, ParallelOptions{}); err == nil {
		t.Fatal("bad α accepted")
	}
}
