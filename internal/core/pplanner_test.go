package core

import (
	"runtime"
	"sync/atomic"
	"testing"

	"bisectlb/internal/bisect"
	"bisectlb/internal/obs"
)

// workerCounts spans 1..GOMAXPROCS plus an oversubscribed count, so the
// parity net also covers more workers than cores.
func workerCounts() []int {
	max := runtime.GOMAXPROCS(0)
	counts := make([]int, 0, max+1)
	for w := 1; w <= max; w++ {
		counts = append(counts, w)
	}
	return append(counts, max*2+1)
}

// TestParallelPlannerParity is the tentpole acceptance check: for every
// algorithm, every kernel substrate and every worker count, the parallel
// planner's output must be bit-identical to the sequential planner's —
// same parts in the same order, same accounting. Run under -race this
// also nets data races in the fan-out/merge.
func TestParallelPlannerParity(t *testing.T) {
	ns := []int{1, 2, 17, 64, 333, 1024, 4096}
	for _, tc := range flatCases() {
		for _, w := range workerCounts() {
			opt := ParallelOptions{Workers: w, SpawnThreshold: 16}
			pp := NewParallelPlanner(64, opt)
			seq := NewPlanner(64)
			var sp, cp Plan
			for _, n := range ns {
				if err := seq.BAInto(&sp, tc.kernel, tc.flat, n); err != nil {
					t.Fatalf("%s w=%d n=%d seq BA: %v", tc.name, w, n, err)
				}
				if err := pp.BAInto(&cp, tc.kernel, tc.flat, n); err != nil {
					t.Fatalf("%s w=%d n=%d par BA: %v", tc.name, w, n, err)
				}
				checkPlansIdentical(t, &sp, &cp)

				if err := seq.BAHFInto(&sp, tc.kernel, tc.flat, n, 0.1, 1); err != nil {
					t.Fatalf("%s w=%d n=%d seq BA-HF: %v", tc.name, w, n, err)
				}
				if err := pp.BAHFInto(&cp, tc.kernel, tc.flat, n, 0.1, 1); err != nil {
					t.Fatalf("%s w=%d n=%d par BA-HF: %v", tc.name, w, n, err)
				}
				checkPlansIdentical(t, &sp, &cp)

				if err := seq.HFInto(&sp, tc.kernel, tc.flat, n); err != nil {
					t.Fatalf("%s w=%d n=%d seq HF: %v", tc.name, w, n, err)
				}
				if err := pp.HFInto(&cp, tc.kernel, tc.flat, n); err != nil {
					t.Fatalf("%s w=%d n=%d par HF: %v", tc.name, w, n, err)
				}
				checkPlansIdentical(t, &sp, &cp)

				if err := seq.PHFInto(&sp, tc.kernel, tc.flat, n, 0.1); err != nil {
					t.Fatalf("%s w=%d n=%d seq PHF: %v", tc.name, w, n, err)
				}
				if err := pp.PHFInto(&cp, tc.kernel, tc.flat, n, 0.1); err != nil {
					t.Fatalf("%s w=%d n=%d par PHF: %v", tc.name, w, n, err)
				}
				checkPlansIdentical(t, &sp, &cp)
			}
		}
	}
}

// TestParallelPlannerBucketQueueParity repeats the BA-HF parity check
// with the bucket queue driving every worker's HF finish.
func TestParallelPlannerBucketQueueParity(t *testing.T) {
	for _, tc := range flatCases() {
		for _, w := range []int{1, 2, 4} {
			pp := NewParallelPlanner(64, ParallelOptions{Workers: w, SpawnThreshold: 16})
			pp.SetBucketQueue(true)
			if !pp.BucketQueueEnabled() {
				t.Fatal("SetBucketQueue(true) not reflected")
			}
			seq := NewPlanner(64)
			var sp, cp Plan
			for _, n := range []int{17, 333, 1024, 4096} {
				if err := seq.BAHFInto(&sp, tc.kernel, tc.flat, n, 0.1, 1); err != nil {
					t.Fatal(err)
				}
				if err := pp.BAHFInto(&cp, tc.kernel, tc.flat, n, 0.1, 1); err != nil {
					t.Fatal(err)
				}
				checkPlansIdentical(t, &sp, &cp)
			}
		}
	}
}

// TestParallelPlannerReuse drives one planner through interleaved
// algorithms and sizes twice and demands the warm pass reproduce the
// cold pass exactly — buffer reuse must never leak state across runs.
func TestParallelPlannerReuse(t *testing.T) {
	pp := NewParallelPlanner(256, ParallelOptions{Workers: 4, SpawnThreshold: 16})
	k := bisect.SyntheticKernel{Lo: 0.1, Hi: 0.5}
	root := bisect.SyntheticFlatRoot(1, 9)
	run := func(plan *Plan) []FlatPart {
		if err := pp.BAInto(plan, k, root, 1024); err != nil {
			t.Fatal(err)
		}
		out := append([]FlatPart(nil), plan.Parts...)
		if err := pp.BAHFInto(plan, k, root, 512, 0.1, 1); err != nil {
			t.Fatal(err)
		}
		return append(out, plan.Parts...)
	}
	var plan Plan
	a := run(&plan)
	b := run(&plan)
	if len(a) != len(b) {
		t.Fatalf("reuse changed part count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reuse changed part %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestParallelPlannerWorkerAllocationFree pins the per-worker steady
// state: re-driving one warm worker over a retained task queue performs
// zero heap allocations. (The public entry points still pay the
// per-call goroutine spawns; this isolates the planning work itself.)
func TestParallelPlannerWorkerAllocationFree(t *testing.T) {
	var k bisect.Kernel = bisect.SyntheticKernel{Lo: 0.1, Hi: 0.5}
	root := bisect.SyntheticFlatRoot(1, 42)
	pp := NewParallelPlanner(4096, ParallelOptions{Workers: 2, SpawnThreshold: 64})
	var plan Plan
	if err := pp.BAHFInto(&plan, k, root, 4096, 0.1, 1); err != nil {
		t.Fatal(err)
	}
	if len(pp.tasks) == 0 {
		t.Fatal("no tasks retained; grain too coarse for the test setup")
	}
	pw := pp.workers[0]
	// Warm the single worker over the full queue once: solo it plans
	// every task, so its buffers reach the union high-water mark.
	var next atomic.Int64
	pw.plan.Parts = pw.plan.Parts[:0]
	pp.runWorker(pw, k, 11, &next)
	allocs := testing.AllocsPerRun(10, func() {
		next.Store(0)
		pw.plan.Parts = pw.plan.Parts[:0]
		pw.bis = 0
		pp.runWorker(pw, k, 11, &next)
	})
	if allocs != 0 {
		t.Fatalf("steady-state worker planning allocates %v allocs/op, want 0", allocs)
	}
}

// TestParallelPlannerMetrics checks the counters move and the
// sequential-fallback path is taken where documented.
func TestParallelPlannerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	pp := NewParallelPlanner(1024, ParallelOptions{Workers: 2, SpawnThreshold: 16, Metrics: reg})
	k := bisect.SyntheticKernel{Lo: 0.1, Hi: 0.5}
	root := bisect.SyntheticFlatRoot(1, 3)
	var plan Plan
	if err := pp.BAInto(&plan, k, root, 1024); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(mPPlanTasks).Value(); got == 0 {
		t.Fatal("parallel BA recorded no tasks")
	}
	if got := reg.Counter(mPPlanSpawns).Value(); got != 2 {
		t.Fatalf("spawns = %d, want 2", got)
	}
	if err := pp.HFInto(&plan, k, root, 1024); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(mPPlanSeqFalls).Value(); got == 0 {
		t.Fatal("HF did not record a sequential fallback")
	}
}

// TestParallelPlannerRejectsBadInput mirrors the sequential validation.
func TestParallelPlannerRejectsBadInput(t *testing.T) {
	pp := NewParallelPlanner(4, ParallelOptions{Workers: 2})
	k := bisect.FixedKernel{Alpha: 0.3}
	var plan Plan
	if err := pp.BAInto(&plan, k, bisect.FlatNode{Weight: 0}, 4); err == nil {
		t.Fatal("zero-weight root accepted")
	}
	if err := pp.BAInto(&plan, k, bisect.FixedFlatRoot(1), 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if err := pp.BAHFInto(&plan, k, bisect.FixedFlatRoot(1), 4, 0, 1); err == nil {
		t.Fatal("α=0 accepted")
	}
	if err := pp.BAHFInto(&plan, k, bisect.FixedFlatRoot(1), 4, 0.1, -1); err == nil {
		t.Fatal("κ<0 accepted")
	}
}

// TestParallelPlannerAccessors covers the pool-facing surface the
// service relies on: options round-trip, late metrics injection, and
// footprint accounting over retained per-worker state.
func TestParallelPlannerAccessors(t *testing.T) {
	pp := NewParallelPlanner(256, ParallelOptions{Workers: 3, SpawnThreshold: 16})
	if got := pp.Options().Workers; got != 3 {
		t.Fatalf("Options().Workers = %d, want 3", got)
	}
	reg := obs.NewRegistry()
	pp.SetMetrics(reg)
	if pp.Options().Metrics != reg {
		t.Fatal("SetMetrics did not install the registry")
	}
	k := bisect.FixedKernel{Alpha: 0.3}
	var plan Plan
	if err := pp.BAInto(&plan, k, bisect.FixedFlatRoot(1), 256); err != nil {
		t.Fatal(err)
	}
	if pp.Footprint() <= 0 {
		t.Fatal("Footprint must count worker arenas retained after planning")
	}
	if err := pp.BAHFInto(&plan, k, bisect.FlatNode{Weight: 0}, 4, 0.3, 1); err == nil {
		t.Fatal("BAHFInto accepted a zero-weight root")
	}
}

// TestParallelPlannerLeafRoot covers the top-expansion terminal branch:
// an indivisible root must come back as one part holding all n
// processors, identically from the parallel and sequential planners,
// and a fixed-split root exercises the heavy-child-first swap.
func TestParallelPlannerLeafRoot(t *testing.T) {
	pp := NewParallelPlanner(4096, ParallelOptions{Workers: 2, SpawnThreshold: 16})
	k := bisect.FixedKernel{Alpha: 0.3}
	leaf := bisect.FixedFlatRoot(1)
	leaf.Leaf = true
	var par, seq Plan
	if err := pp.BAInto(&par, k, leaf, 4096); err != nil {
		t.Fatal(err)
	}
	var pl Planner
	if err := pl.BAInto(&seq, k, leaf, 4096); err != nil {
		t.Fatal(err)
	}
	checkPlansIdentical(t, &seq, &par)
	if len(par.Parts) != 1 || par.Parts[0].Procs != 4096 {
		t.Fatalf("leaf root planned as %d parts, first procs %d", len(par.Parts), par.Parts[0].Procs)
	}
	if err := pp.BAInto(&par, k, bisect.FixedFlatRoot(1), 4096); err != nil {
		t.Fatal(err)
	}
	if err := pl.BAInto(&seq, k, bisect.FixedFlatRoot(1), 4096); err != nil {
		t.Fatal(err)
	}
	checkPlansIdentical(t, &seq, &par)
	if NewPlanner(0) == nil {
		t.Fatal("NewPlanner(0) must clamp, not fail")
	}
}
