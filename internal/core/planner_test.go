package core

import (
	"testing"

	"bisectlb/internal/bisect"
)

// flatCase pairs an interface substrate with its flat kernel so parity can
// be checked for every algorithm over every substrate.
type flatCase struct {
	name   string
	root   func() bisect.Problem
	flat   bisect.FlatNode
	kernel bisect.Kernel
}

func flatCases() []flatCase {
	return []flatCase{
		{
			name:   "uniform",
			root:   func() bisect.Problem { return bisect.MustSynthetic(1, 0.1, 0.5, 42) },
			flat:   bisect.SyntheticFlatRoot(1, 42),
			kernel: bisect.SyntheticKernel{Lo: 0.1, Hi: 0.5},
		},
		{
			name:   "fixed",
			root:   func() bisect.Problem { return bisect.MustFixed(2, 0.3) },
			flat:   bisect.FixedFlatRoot(2),
			kernel: bisect.FixedKernel{Alpha: 0.3},
		},
		{
			name:   "list",
			root:   func() bisect.Problem { return bisect.MustList(5000, 0.2, 7) },
			flat:   bisect.ListFlatRoot(5000, 0.2, 7),
			kernel: bisect.ListKernel{Alpha: 0.2},
		},
	}
}

// checkPlanMatchesResult asserts that a flat plan and an interface result
// describe the identical partition: same part IDs, weights, processor
// counts, depths, and summary statistics.
func checkPlanMatchesResult(t *testing.T, plan *Plan, res *Result) {
	t.Helper()
	if len(plan.Parts) != len(res.Parts) {
		t.Fatalf("part count: flat %d, interface %d", len(plan.Parts), len(res.Parts))
	}
	for i := range plan.Parts {
		fp, ip := plan.Parts[i], res.Parts[i]
		if fp.Node.ID != ip.Problem.ID() {
			t.Fatalf("part %d: flat ID %d, interface ID %d", i, fp.Node.ID, ip.Problem.ID())
		}
		if fp.Node.Weight != ip.Problem.Weight() {
			t.Fatalf("part %d: flat weight %v, interface weight %v", i, fp.Node.Weight, ip.Problem.Weight())
		}
		if int(fp.Procs) != ip.Procs {
			t.Fatalf("part %d: flat procs %d, interface procs %d", i, fp.Procs, ip.Procs)
		}
		if int(fp.Node.Depth) != ip.Depth {
			t.Fatalf("part %d: flat depth %d, interface depth %d", i, fp.Node.Depth, ip.Depth)
		}
	}
	if plan.Total != res.Total || plan.Max != res.Max || plan.Ratio != res.Ratio {
		t.Fatalf("summary diverged: flat (%v,%v,%v), interface (%v,%v,%v)",
			plan.Total, plan.Max, plan.Ratio, res.Total, res.Max, res.Ratio)
	}
	if plan.Bisections != res.Bisections || plan.MaxDepth != res.MaxDepth {
		t.Fatalf("accounting diverged: flat (%d,%d), interface (%d,%d)",
			plan.Bisections, plan.MaxDepth, res.Bisections, res.MaxDepth)
	}
}

func TestPlannerHFParity(t *testing.T) {
	for _, tc := range flatCases() {
		for _, n := range []int{1, 2, 17, 64, 333, 1024} {
			pl := NewPlanner(n)
			var plan Plan
			if err := pl.HFInto(&plan, tc.kernel, tc.flat, n); err != nil {
				t.Fatalf("%s n=%d: %v", tc.name, n, err)
			}
			res, err := HF(tc.root(), n, Options{})
			if err != nil {
				t.Fatalf("%s n=%d interface: %v", tc.name, n, err)
			}
			checkPlanMatchesResult(t, &plan, res)
		}
	}
}

func TestPlannerBAParity(t *testing.T) {
	for _, tc := range flatCases() {
		for _, n := range []int{1, 2, 17, 64, 333, 1024} {
			pl := NewPlanner(n)
			var plan Plan
			if err := pl.BAInto(&plan, tc.kernel, tc.flat, n); err != nil {
				t.Fatalf("%s n=%d: %v", tc.name, n, err)
			}
			res, err := BA(tc.root(), n, Options{})
			if err != nil {
				t.Fatalf("%s n=%d interface: %v", tc.name, n, err)
			}
			checkPlanMatchesResult(t, &plan, res)
		}
	}
}

func TestPlannerBAHFParity(t *testing.T) {
	for _, tc := range flatCases() {
		for _, n := range []int{1, 2, 17, 64, 333, 1024} {
			for _, kappa := range []float64{1, 2} {
				pl := NewPlanner(n)
				var plan Plan
				if err := pl.BAHFInto(&plan, tc.kernel, tc.flat, n, 0.1, kappa); err != nil {
					t.Fatalf("%s n=%d κ=%g: %v", tc.name, n, kappa, err)
				}
				res, err := BAHF(tc.root(), n, 0.1, kappa, Options{})
				if err != nil {
					t.Fatalf("%s n=%d κ=%g interface: %v", tc.name, n, kappa, err)
				}
				// Interface BA-HF embeds κ in the algorithm name; ignore it.
				res.Algorithm = "BA-HF"
				checkPlanMatchesResult(t, &plan, res)
			}
		}
	}
}

func TestPlannerPHFParity(t *testing.T) {
	for _, tc := range flatCases() {
		for _, n := range []int{1, 2, 17, 64, 333, 1024} {
			pl := NewPlanner(n)
			var plan Plan
			if err := pl.PHFInto(&plan, tc.kernel, tc.flat, n, 0.1); err != nil {
				t.Fatalf("%s n=%d: %v", tc.name, n, err)
			}
			res, err := PHF(tc.root(), n, 0.1, Options{})
			if err != nil {
				t.Fatalf("%s n=%d interface: %v", tc.name, n, err)
			}
			checkPlanMatchesResult(t, &plan, &res.Result)
		}
	}
}

// TestPlannerReuseIsDeterministic runs the same plan twice through one
// planner (buffers warm the second time) and demands identical output.
func TestPlannerReuseIsDeterministic(t *testing.T) {
	pl := NewPlanner(256)
	k := bisect.SyntheticKernel{Lo: 0.1, Hi: 0.5}
	root := bisect.SyntheticFlatRoot(1, 9)
	var a, b Plan
	if err := pl.HFInto(&a, k, root, 256); err != nil {
		t.Fatal(err)
	}
	// Interleave another algorithm to dirty every shared buffer.
	if err := pl.BAHFInto(&b, k, root, 256, 0.1, 1); err != nil {
		t.Fatal(err)
	}
	if err := pl.HFInto(&b, k, root, 256); err != nil {
		t.Fatal(err)
	}
	if len(a.Parts) != len(b.Parts) {
		t.Fatalf("reuse changed part count: %d vs %d", len(a.Parts), len(b.Parts))
	}
	for i := range a.Parts {
		if a.Parts[i] != b.Parts[i] {
			t.Fatalf("reuse changed part %d: %+v vs %+v", i, a.Parts[i], b.Parts[i])
		}
	}
}

// TestPlannerAllocationFree is the §10 acceptance check: once the planner
// and plan buffers are warm, HF, BA, BA-HF and PHF planning performs zero
// heap allocations per run.
func TestPlannerAllocationFree(t *testing.T) {
	const n = 1024
	// Convert the kernel to its interface form once: converting a multi-word
	// concrete kernel at every call would itself allocate.
	var k bisect.Kernel = bisect.SyntheticKernel{Lo: 0.1, Hi: 0.5}
	root := bisect.SyntheticFlatRoot(1, 42)
	runs := []struct {
		name string
		run  func(pl *Planner, plan *Plan) error
	}{
		{"HF", func(pl *Planner, plan *Plan) error { return pl.HFInto(plan, k, root, n) }},
		{"BA", func(pl *Planner, plan *Plan) error { return pl.BAInto(plan, k, root, n) }},
		{"BA-HF", func(pl *Planner, plan *Plan) error { return pl.BAHFInto(plan, k, root, n, 0.1, 1) }},
		{"PHF", func(pl *Planner, plan *Plan) error { return pl.PHFInto(plan, k, root, n, 0.1) }},
	}
	for _, tc := range runs {
		t.Run(tc.name, func(t *testing.T) {
			pl := NewPlanner(n)
			var plan Plan
			if err := tc.run(pl, &plan); err != nil { // warm the buffers
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if err := tc.run(pl, &plan); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state %s planning allocates %v allocs/op, want 0", tc.name, allocs)
			}
		})
	}
}

// TestPlannerBucketQueueParity is the bit-identity contract of DESIGN.md
// §13: the monotone bucket queue must reproduce the binary heap's output
// exactly — same parts, same order, same accounting — for every HF path
// (HFInto and BA-HF's inner phase) over every kernel substrate.
func TestPlannerBucketQueueParity(t *testing.T) {
	for _, tc := range flatCases() {
		for _, n := range []int{1, 2, 17, 64, 333, 1024, 4096} {
			heapPl, bucketPl := NewPlanner(n), NewPlanner(n)
			bucketPl.SetBucketQueue(true)
			var hp, bp Plan

			if err := heapPl.HFInto(&hp, tc.kernel, tc.flat, n); err != nil {
				t.Fatalf("%s n=%d heap HF: %v", tc.name, n, err)
			}
			if err := bucketPl.HFInto(&bp, tc.kernel, tc.flat, n); err != nil {
				t.Fatalf("%s n=%d bucket HF: %v", tc.name, n, err)
			}
			checkPlansIdentical(t, &hp, &bp)

			if err := heapPl.BAHFInto(&hp, tc.kernel, tc.flat, n, 0.1, 1); err != nil {
				t.Fatalf("%s n=%d heap BA-HF: %v", tc.name, n, err)
			}
			if err := bucketPl.BAHFInto(&bp, tc.kernel, tc.flat, n, 0.1, 1); err != nil {
				t.Fatalf("%s n=%d bucket BA-HF: %v", tc.name, n, err)
			}
			checkPlansIdentical(t, &hp, &bp)
		}
	}
}

// checkPlansIdentical demands two plans be equal field for field,
// including the exact float64 bits of every part weight.
func checkPlansIdentical(t *testing.T, a, b *Plan) {
	t.Helper()
	if a.Algorithm != b.Algorithm || a.N != b.N || a.Total != b.Total ||
		a.Max != b.Max || a.Ratio != b.Ratio ||
		a.Bisections != b.Bisections || a.MaxDepth != b.MaxDepth {
		t.Fatalf("plan summaries diverged:\n  a: %+v\n  b: %+v", headerOf(a), headerOf(b))
	}
	if len(a.Parts) != len(b.Parts) {
		t.Fatalf("part counts diverged: %d vs %d", len(a.Parts), len(b.Parts))
	}
	for i := range a.Parts {
		if a.Parts[i] != b.Parts[i] {
			t.Fatalf("part %d diverged: %+v vs %+v", i, a.Parts[i], b.Parts[i])
		}
	}
}

// headerOf copies a plan's summary fields for failure messages.
func headerOf(p *Plan) Plan {
	h := *p
	h.Parts = nil
	return h
}

// TestPlannerBucketQueueAllocationFree extends the §10 acceptance check
// to the bucket-queue configuration: after warm-up (which may allocate
// the bucket directory once), HF and BA-HF planning through the bucket
// queue performs zero heap allocations per run.
func TestPlannerBucketQueueAllocationFree(t *testing.T) {
	const n = 1024
	var k bisect.Kernel = bisect.SyntheticKernel{Lo: 0.1, Hi: 0.5}
	root := bisect.SyntheticFlatRoot(1, 42)
	runs := []struct {
		name string
		run  func(pl *Planner, plan *Plan) error
	}{
		{"HF", func(pl *Planner, plan *Plan) error { return pl.HFInto(plan, k, root, n) }},
		{"BA-HF", func(pl *Planner, plan *Plan) error { return pl.BAHFInto(plan, k, root, n, 0.1, 1) }},
	}
	for _, tc := range runs {
		t.Run(tc.name, func(t *testing.T) {
			pl := NewPlanner(n)
			pl.SetBucketQueue(true)
			var plan Plan
			if err := tc.run(pl, &plan); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if err := tc.run(pl, &plan); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state %s bucket-queue planning allocates %v allocs/op, want 0", tc.name, allocs)
			}
		})
	}
}

func TestPlannerRejectsBadInput(t *testing.T) {
	pl := NewPlanner(4)
	k := bisect.FixedKernel{Alpha: 0.3}
	var plan Plan
	if err := pl.HFInto(&plan, k, bisect.FlatNode{Weight: 0}, 4); err == nil {
		t.Fatal("zero-weight root accepted")
	}
	if err := pl.HFInto(&plan, k, bisect.FixedFlatRoot(1), 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if err := pl.PHFInto(&plan, k, bisect.FixedFlatRoot(1), 4, 0); err == nil {
		t.Fatal("α=0 accepted by PHFInto")
	}
	if err := pl.BAHFInto(&plan, k, bisect.FixedFlatRoot(1), 4, 0.1, -1); err == nil {
		t.Fatal("κ<0 accepted by BAHFInto")
	}
}
