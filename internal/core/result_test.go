package core

import (
	"testing"

	"bisectlb/internal/bisect"
)

func mkResult(t *testing.T, n int) *Result {
	t.Helper()
	res, err := HF(bisect.MustSynthetic(1, 0.1, 0.5, 99), n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPartIDsSortedAndComplete(t *testing.T) {
	res := mkResult(t, 17)
	ids := res.PartIDs()
	if len(ids) != 17 {
		t.Fatalf("ids = %d", len(ids))
	}
	seen := map[uint64]bool{}
	for i, id := range ids {
		if seen[id] {
			t.Fatal("duplicate id")
		}
		seen[id] = true
		if i > 0 && ids[i-1] >= id {
			t.Fatal("ids not ascending")
		}
	}
}

func TestWeightsMatchParts(t *testing.T) {
	res := mkResult(t, 9)
	ws := res.Weights()
	if len(ws) != len(res.Parts) {
		t.Fatal("length mismatch")
	}
	for i, w := range ws {
		if w != res.Parts[i].Problem.Weight() {
			t.Fatalf("weight %d mismatch", i)
		}
	}
}

func TestSamePartitionEdgeCases(t *testing.T) {
	a := mkResult(t, 8)
	if SamePartition(nil, a) || SamePartition(a, nil) || SamePartition(nil, nil) {
		t.Fatal("nil results compared equal")
	}
	b := mkResult(t, 9)
	if SamePartition(a, b) {
		t.Fatal("different part counts compared equal")
	}
	c := mkResult(t, 8)
	if !SamePartition(a, c) {
		t.Fatal("identical runs compared unequal")
	}
	// Same count, different instance: IDs differ.
	d, err := HF(bisect.MustSynthetic(1, 0.1, 0.5, 100), 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if SamePartition(a, d) {
		t.Fatal("different instances compared equal")
	}
}

func TestCheckPartitionCatchesTampering(t *testing.T) {
	res := mkResult(t, 6)
	if err := res.CheckPartition(1e-9); err != nil {
		t.Fatal(err)
	}
	// Too many parts for N.
	res.N = 3
	if err := res.CheckPartition(1e-9); err == nil {
		t.Fatal("part overflow not detected")
	}
	res.N = 6
	// Tampered max.
	res.Max *= 2
	if err := res.CheckPartition(1e-9); err == nil {
		t.Fatal("max tampering not detected")
	}
	res.Max /= 2
	// Tampered total.
	res.Total *= 2
	if err := res.CheckPartition(1e-9); err == nil {
		t.Fatal("total tampering not detected")
	}
	res.Total /= 2
	// Zero-processor part.
	res.Parts[0].Procs = 0
	if err := res.CheckPartition(1e-9); err == nil {
		t.Fatal("zero-proc part not detected")
	}
	res.Parts[0].Procs = 1
	// Empty result.
	empty := &Result{N: 4, Total: 1}
	if err := empty.CheckPartition(1e-9); err == nil {
		t.Fatal("empty result not detected")
	}
}

func TestAlgorithmNamesOnResults(t *testing.T) {
	p := bisect.MustSynthetic(1, 0.1, 0.5, 1)
	hf, _ := HF(p, 4, Options{})
	ba, _ := BA(p, 4, Options{})
	hyb, _ := BAHF(p, 4, 0.1, 2.5, Options{})
	phf, _ := PHF(p, 4, 0.1, Options{})
	if hf.Algorithm != "HF" || ba.Algorithm != "BA" || phf.Algorithm != "PHF" {
		t.Fatalf("names: %q %q %q", hf.Algorithm, ba.Algorithm, phf.Algorithm)
	}
	if hyb.Algorithm != "BA-HF(κ=2.5)" {
		t.Fatalf("hybrid name %q", hyb.Algorithm)
	}
}

func TestMaxDepthConsistentWithParts(t *testing.T) {
	res := mkResult(t, 40)
	want := 0
	for _, pt := range res.Parts {
		if pt.Depth > want {
			want = pt.Depth
		}
	}
	if res.MaxDepth != want {
		t.Fatalf("MaxDepth %d, parts say %d", res.MaxDepth, want)
	}
}
