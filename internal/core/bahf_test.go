package core

import (
	"testing"
	"testing/quick"

	"bisectlb/internal/bisect"
	"bisectlb/internal/bounds"
	"bisectlb/internal/xrand"
)

func TestBAHFBasicContract(t *testing.T) {
	p := bisect.MustSynthetic(100, 0.1, 0.5, 1)
	for _, n := range []int{1, 2, 3, 7, 32, 100, 1024} {
		res, err := BAHF(p, n, 0.1, 1.0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Parts) != n {
			t.Fatalf("n=%d: got %d parts", n, len(res.Parts))
		}
		if res.Bisections != n-1 {
			t.Fatalf("n=%d: %d bisections, want %d", n, res.Bisections, n-1)
		}
		if err := res.CheckPartition(1e-9); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBAHFGuarantee(t *testing.T) {
	for _, alpha := range []float64{0.05, 0.1, 0.2, 1.0 / 3.0, 0.5} {
		for _, kappa := range []float64{0.5, 1, 2, 3} {
			p := bisect.MustFixed(1, alpha)
			for _, n := range []int{2, 16, 100, 1024} {
				res, err := BAHF(p, n, alpha, kappa, Options{})
				if err != nil {
					t.Fatal(err)
				}
				limit := bounds.BAHF(alpha, kappa)
				// The small-N regime falls back to HF entirely, whose own
				// guarantee may be the binding one.
				if hf := bounds.RHF(alpha); hf > limit {
					limit = hf
				}
				if limit < 2*(1-alpha) {
					limit = 2 * (1 - alpha)
				}
				if res.Ratio > limit+1e-9 {
					t.Fatalf("α=%v κ=%v n=%d: ratio %v exceeds guarantee %v",
						alpha, kappa, n, res.Ratio, limit)
				}
			}
		}
	}
}

func TestBAHFSmallNEqualsHF(t *testing.T) {
	// With n < κ/α + 1 the hybrid is HF from the start: identical parts.
	alpha, kappa := 0.1, 2.0 // cutoff = 21
	for _, n := range []int{2, 5, 10, 20} {
		hf, err := HF(bisect.MustSynthetic(1, alpha, 0.5, 4), n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		hyb, err := BAHF(bisect.MustSynthetic(1, alpha, 0.5, 4), n, alpha, kappa, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !SamePartition(hf, hyb) {
			t.Fatalf("n=%d below cutoff: BA-HF != HF", n)
		}
	}
}

func TestBAHFHugeKappaEqualsHF(t *testing.T) {
	rng := xrand.New(31)
	for trial := 0; trial < 20; trial++ {
		seed := rng.Uint64()
		n := 2 + rng.Intn(500)
		hf, err := HF(bisect.MustSynthetic(1, 0.1, 0.5, seed), n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		hyb, err := BAHF(bisect.MustSynthetic(1, 0.1, 0.5, seed), n, 0.1, 1e9, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !SamePartition(hf, hyb) {
			t.Fatalf("trial %d: κ→∞ BA-HF != HF", trial)
		}
	}
}

func TestBAHFTinyKappaApproachesBA(t *testing.T) {
	// κ→0 makes the cutoff ≈ 1, so BA-HF never leaves the BA regime.
	seed := uint64(12)
	n := 300
	ba, err := BA(bisect.MustSynthetic(1, 0.2, 0.5, seed), n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := BAHF(bisect.MustSynthetic(1, 0.2, 0.5, seed), n, 0.2, 1e-9, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !SamePartition(ba, hyb) {
		t.Fatal("κ→0 BA-HF != BA")
	}
}

func TestBAHFQualityBetweenBAAndHF(t *testing.T) {
	// The paper's simulations found HF best, BA worst, BA-HF in between —
	// verify the ordering on sample means (not per-instance, which can
	// fluctuate).
	rng := xrand.New(41)
	const trials = 300
	var sumHF, sumBA, sumHyb float64
	for i := 0; i < trials; i++ {
		seed := rng.Uint64()
		n := 256
		hf, err := HF(bisect.MustSynthetic(1, 0.1, 0.5, seed), n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ba, err := BA(bisect.MustSynthetic(1, 0.1, 0.5, seed), n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		hyb, err := BAHF(bisect.MustSynthetic(1, 0.1, 0.5, seed), n, 0.1, 1.0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sumHF += hf.Ratio
		sumBA += ba.Ratio
		sumHyb += hyb.Ratio
	}
	if !(sumHF < sumHyb && sumHyb < sumBA) {
		t.Fatalf("expected avg HF < BA-HF < BA, got %v / %v / %v",
			sumHF/trials, sumHyb/trials, sumBA/trials)
	}
}

func TestBAHFErrors(t *testing.T) {
	p := bisect.MustSynthetic(1, 0.1, 0.5, 1)
	if _, err := BAHF(p, 4, 0, 1, Options{}); err == nil {
		t.Fatal("α=0 accepted")
	}
	if _, err := BAHF(p, 4, 0.1, 0, Options{}); err == nil {
		t.Fatal("κ=0 accepted")
	}
	if _, err := BAHF(nil, 4, 0.1, 1, Options{}); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := BAHF(p, 0, 0.1, 1, Options{}); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestBAHFDeterminismQuick(t *testing.T) {
	rng := xrand.New(55)
	f := func(seed uint64) bool {
		rng.Reseed(seed)
		n := 1 + rng.Intn(600)
		kappa := rng.InRange(0.5, 4)
		a, err := BAHF(bisect.MustSynthetic(1, 0.1, 0.5, seed), n, 0.1, kappa, Options{})
		if err != nil {
			return false
		}
		b, err := BAHF(bisect.MustSynthetic(1, 0.1, 0.5, seed), n, 0.1, kappa, Options{})
		if err != nil {
			return false
		}
		return SamePartition(a, b) && a.CheckPartition(1e-9) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
