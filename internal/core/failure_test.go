package core

// Failure-injection tests: broken Problem implementations must not corrupt
// results silently — either the run still terminates with a structurally
// detectable defect (CheckPartition / tree recording flags it) or the
// algorithms degrade as documented.

import (
	"math"
	"testing"

	"bisectlb/internal/bisect"
)

// leakyProblem violates weight conservation: children sum to less than the
// parent (models work lost by a buggy splitter).
type leakyProblem struct {
	weight float64
	id     uint64
}

func (l *leakyProblem) Weight() float64 { return l.weight }
func (l *leakyProblem) CanBisect() bool { return true }
func (l *leakyProblem) ID() uint64      { return l.id }
func (l *leakyProblem) Bisect() (bisect.Problem, bisect.Problem) {
	return &leakyProblem{weight: 0.5 * l.weight, id: 2 * l.id},
		&leakyProblem{weight: 0.3 * l.weight, id: 2*l.id + 1}
}

func TestLeakyWeightsDetectedByCheckPartition(t *testing.T) {
	res, err := HF(&leakyProblem{weight: 1, id: 1}, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckPartition(1e-9); err == nil {
		t.Fatal("CheckPartition missed the leaked weight")
	}
}

func TestLeakyWeightsDetectedByTree(t *testing.T) {
	res, err := HF(&leakyProblem{weight: 1, id: 1}, 8, Options{RecordTree: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Tree.CheckInvariants(1e-9); err == nil {
		t.Fatal("tree invariants missed the leaked weight")
	}
}

// collidingProblem reuses the same ID for every node — a broken identity
// scheme. Tree recording must refuse it rather than silently mis-recording.
type collidingProblem struct {
	weight float64
}

func (c *collidingProblem) Weight() float64 { return c.weight }
func (c *collidingProblem) CanBisect() bool { return true }
func (c *collidingProblem) ID() uint64      { return 42 }
func (c *collidingProblem) Bisect() (bisect.Problem, bisect.Problem) {
	return &collidingProblem{weight: 0.6 * c.weight}, &collidingProblem{weight: 0.4 * c.weight}
}

func TestIDCollisionRejectedByTreeRecording(t *testing.T) {
	if _, err := HF(&collidingProblem{weight: 1}, 8, Options{RecordTree: true}); err == nil {
		t.Fatal("ID collision not rejected")
	}
	if _, err := BA(&collidingProblem{weight: 1}, 8, Options{RecordTree: true}); err == nil {
		t.Fatal("ID collision not rejected by BA")
	}
	if _, err := PHF(&collidingProblem{weight: 1}, 8, 0.4, Options{RecordTree: true}); err == nil {
		t.Fatal("ID collision not rejected by PHF")
	}
}

// nanRoot reports a NaN weight.
type nanRoot struct{}

func (nanRoot) Weight() float64                          { return math.NaN() }
func (nanRoot) CanBisect() bool                          { return true }
func (nanRoot) ID() uint64                               { return 1 }
func (nanRoot) Bisect() (bisect.Problem, bisect.Problem) { return nanRoot{}, nanRoot{} }

func TestNaNRootRejected(t *testing.T) {
	if _, err := HF(nanRoot{}, 4, Options{}); err == nil {
		t.Fatal("NaN root accepted by HF")
	}
	if _, err := BA(nanRoot{}, 4, Options{}); err == nil {
		t.Fatal("NaN root accepted by BA")
	}
	if _, err := PHF(nanRoot{}, 4, 0.2, Options{}); err == nil {
		t.Fatal("NaN root accepted by PHF")
	}
	if _, err := BAHF(nanRoot{}, 4, 0.2, 1, Options{}); err == nil {
		t.Fatal("NaN root accepted by BA-HF")
	}
	if _, err := ParallelBA(nanRoot{}, 4, ParallelOptions{}); err == nil {
		t.Fatal("NaN root accepted by ParallelBA")
	}
}

// infRoot reports an infinite weight.
type infRoot struct{ nanRoot }

func (infRoot) Weight() float64 { return math.Inf(1) }

func TestInfiniteRootRejected(t *testing.T) {
	if _, err := HF(infRoot{}, 4, Options{}); err == nil {
		t.Fatal("infinite root accepted")
	}
}

// growingProblem violates the bisector contract upwards: children sum to
// MORE than the parent. HF must still terminate with exactly n parts (the
// loop is count-driven, not weight-driven) and CheckPartition must flag it.
type growingProblem struct {
	weight float64
	id     uint64
}

func (g *growingProblem) Weight() float64 { return g.weight }
func (g *growingProblem) CanBisect() bool { return true }
func (g *growingProblem) ID() uint64      { return g.id }
func (g *growingProblem) Bisect() (bisect.Problem, bisect.Problem) {
	return &growingProblem{weight: 0.7 * g.weight, id: 2 * g.id},
		&growingProblem{weight: 0.6 * g.weight, id: 2*g.id + 1}
}

func TestGrowingWeightsTerminate(t *testing.T) {
	res, err := HF(&growingProblem{weight: 1, id: 1}, 64, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != 64 || res.Bisections != 63 {
		t.Fatalf("parts=%d bisections=%d", len(res.Parts), res.Bisections)
	}
	if err := res.CheckPartition(1e-9); err == nil {
		t.Fatal("CheckPartition missed the invented weight")
	}
}

// flipFlopProblem returns different children on repeated Bisect calls,
// breaking the determinism contract. The PHF ≡ HF identity is then void,
// but both algorithms must still terminate with valid part counts.
type flipFlopProblem struct {
	weight float64
	id     uint64
	calls  *int
}

func (f *flipFlopProblem) Weight() float64 { return f.weight }
func (f *flipFlopProblem) CanBisect() bool { return true }
func (f *flipFlopProblem) ID() uint64      { return f.id }
func (f *flipFlopProblem) Bisect() (bisect.Problem, bisect.Problem) {
	*f.calls++
	frac := 0.5
	if *f.calls%2 == 0 {
		frac = 0.35
	}
	return &flipFlopProblem{weight: frac * f.weight, id: 2 * f.id, calls: f.calls},
		&flipFlopProblem{weight: (1 - frac) * f.weight, id: 2*f.id + 1, calls: f.calls}
}

func TestNonDeterministicBisectStillTerminates(t *testing.T) {
	calls := 0
	res, err := HF(&flipFlopProblem{weight: 1, id: 1, calls: &calls}, 32, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != 32 {
		t.Fatalf("parts = %d", len(res.Parts))
	}
	calls = 0
	phf, err := PHF(&flipFlopProblem{weight: 1, id: 1, calls: &calls}, 32, 0.3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(phf.Parts) > 32 {
		t.Fatalf("PHF produced %d parts", len(phf.Parts))
	}
}
