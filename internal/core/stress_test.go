package core

// Randomized stress validation of the reconstructed worst-case bounds
// (DESIGN.md §5). These tests hammer the guarantee inequalities of
// Theorems 2, 7 and 8 far beyond the quick property tests; during
// development they falsified two mis-readings of the OCR'd formula for r_α
// before the smooth form survived. They are skipped with -short.

import (
	"testing"

	"bisectlb/internal/bisect"
	"bisectlb/internal/bounds"
	"bisectlb/internal/xrand"
)

func TestStressHFGuarantee(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := xrand.New(1234)
	for trial := 0; trial < 3000; trial++ {
		seed := rng.Uint64()
		lo := rng.InRange(0.02, 0.499)
		hi := rng.InRange(lo, 0.5)
		n := 2 + rng.Intn(3000)
		res, err := HF(bisect.MustSynthetic(1, lo, hi, seed), n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r := bounds.RHF(lo); res.Ratio > r+1e-9 {
			t.Fatalf("HF violation: lo=%v hi=%v n=%d ratio=%v > r=%v", lo, hi, n, res.Ratio, r)
		}
		// The independent elementary bound must hold as well.
		if pr := bounds.RHFProvableN(lo, n); res.Ratio > pr+1e-9 {
			t.Fatalf("HF elementary-bound violation: lo=%v n=%d ratio=%v > %v", lo, n, res.Ratio, pr)
		}
	}
}

func TestStressHFGuaranteeFixedGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for a := 0.02; a <= 0.5; a += 0.01 {
		p := bisect.MustFixed(1, a)
		r := bounds.RHF(a)
		for n := 2; n <= 300; n++ {
			res, err := HF(p, n, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ratio > r+1e-9 {
				t.Fatalf("HF fixed violation: a=%v n=%d ratio=%v > r=%v", a, n, res.Ratio, r)
			}
		}
	}
}

func TestStressBAGuarantee(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := xrand.New(5678)
	for trial := 0; trial < 3000; trial++ {
		seed := rng.Uint64()
		lo := rng.InRange(0.02, 0.499)
		hi := rng.InRange(lo, 0.5)
		n := 2 + rng.Intn(3000)
		res, err := BA(bisect.MustSynthetic(1, lo, hi, seed), n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r := bounds.BA(lo, n); res.Ratio > r+1e-9 {
			t.Fatalf("BA violation: lo=%v hi=%v n=%d ratio=%v > bound=%v", lo, hi, n, res.Ratio, r)
		}
	}
}

func TestStressBAHFGuarantee(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := xrand.New(9012)
	for trial := 0; trial < 2000; trial++ {
		seed := rng.Uint64()
		lo := rng.InRange(0.02, 0.499)
		hi := rng.InRange(lo, 0.5)
		kappa := rng.InRange(0.25, 4)
		n := 2 + rng.Intn(2000)
		res, err := BAHF(bisect.MustSynthetic(1, lo, hi, seed), n, lo, kappa, Options{})
		if err != nil {
			t.Fatal(err)
		}
		limit := bounds.BAHF(lo, kappa)
		if hf := bounds.RHF(lo); hf > limit {
			limit = hf // small-N runs are pure HF
		}
		if res.Ratio > limit+1e-9 {
			t.Fatalf("BA-HF violation: lo=%v κ=%v n=%d ratio=%v > bound=%v",
				lo, kappa, n, res.Ratio, limit)
		}
	}
}

func TestStressPHFIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := xrand.New(3456)
	for trial := 0; trial < 800; trial++ {
		seed := rng.Uint64()
		lo := rng.InRange(0.02, 0.499)
		hi := rng.InRange(lo, 0.5)
		n := 1 + rng.Intn(1500)
		hf, err := HF(bisect.MustSynthetic(1, lo, hi, seed), n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		phf, err := PHF(bisect.MustSynthetic(1, lo, hi, seed), n, lo, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !SamePartition(hf, &phf.Result) {
			t.Fatalf("PHF identity violation: lo=%v hi=%v n=%d seed=%d", lo, hi, n, seed)
		}
	}
}
