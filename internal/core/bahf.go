package core

import (
	"fmt"

	"bisectlb/internal/bisect"
	"bisectlb/internal/bounds"
	"bisectlb/internal/pheap"
)

// BAHF implements Algorithm BA-HF (paper Figure 4): while the processor
// count assigned to a subproblem is at least κ/α + 1, split processors like
// BA; below that threshold, finish the subproblem with Algorithm HF. The
// threshold parameter κ > 0 trades running time against balance quality:
//
//	max_i w(p_i) ≤ (w(p)/n) · e^{(1−α)/κ} · r_α      (Theorem 8)
//
// so κ ≥ 1/ln(1+ε) brings the guarantee within a (1+ε) factor of HF's.
// Unlike BA, Algorithm BA-HF requires knowledge of the class's bisection
// parameter α.
func BAHF(p bisect.Problem, n int, alpha, kappa float64, opt Options) (*Result, error) {
	if err := validate(p, n); err != nil {
		return nil, err
	}
	if err := bounds.ValidateAlpha(alpha); err != nil {
		return nil, err
	}
	if err := bounds.ValidateKappa(kappa); err != nil {
		return nil, err
	}
	rec := newRecorder(opt, p)
	total := p.Weight()
	parts := make([]Part, 0, n)
	bisections := 0
	cutoff := kappa/alpha + 1

	// hfFinish runs the HF inner phase on q with the given processors,
	// appending parts at their absolute bisection-tree depth.
	// The heap and its node arena are shared across hfFinish calls; each
	// call resets them, so one BA-HF run reuses the same backing storage
	// for every HF finishing phase.
	h := pheap.New(0)
	var arena []node
	hfFinish := func(q bisect.Problem, procs, baseDepth int) error {
		h.Reset()
		arena = append(arena[:0], node{q, baseDepth})
		h.Push(pheap.Item{Weight: q.Weight(), ID: q.ID(), Ref: 0})
		done := 0
		for h.Len() > 0 && done+h.Len() < procs {
			it := h.Pop()
			nd := arena[it.Ref]
			if !nd.p.CanBisect() {
				parts = append(parts, Part{Problem: nd.p, Procs: 1, Depth: nd.depth})
				done++
				continue
			}
			c1, c2 := nd.p.Bisect()
			bisections++
			if err := rec.bisection(nd.p, c1, c2); err != nil {
				return err
			}
			arena = append(arena, node{c1, nd.depth + 1}, node{c2, nd.depth + 1})
			h.Push(pheap.Item{Weight: c1.Weight(), ID: c1.ID(), Ref: int32(len(arena) - 2)})
			h.Push(pheap.Item{Weight: c2.Weight(), ID: c2.ID(), Ref: int32(len(arena) - 1)})
		}
		h.Drain(func(it pheap.Item) {
			nd := arena[it.Ref]
			parts = append(parts, Part{Problem: nd.p, Procs: 1, Depth: nd.depth})
		})
		return nil
	}

	var recurse func(q bisect.Problem, procs, depth int) error
	recurse = func(q bisect.Problem, procs, depth int) error {
		rec.procs(q, procs)
		if procs == 1 || !q.CanBisect() {
			parts = append(parts, Part{Problem: q, Procs: procs, Depth: depth})
			return nil
		}
		if float64(procs) < cutoff {
			return hfFinish(q, procs, depth)
		}
		c1, c2 := q.Bisect()
		bisections++
		if err := rec.bisection(q, c1, c2); err != nil {
			return err
		}
		if c1.Weight() < c2.Weight() {
			c1, c2 = c2, c1
		}
		n1, n2 := SplitProcs(c1.Weight(), c2.Weight(), procs)
		if err := recurse(c1, n1, depth+1); err != nil {
			return err
		}
		return recurse(c2, n2, depth+1)
	}
	if err := recurse(p, n, 0); err != nil {
		return nil, err
	}
	res := finalize(fmt.Sprintf("BA-HF(κ=%g)", kappa), parts, n, total, bisections, rec)
	return res, nil
}
