package spatial

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

const maxLineBytes = 1 << 20

// LoadMatrix parses a MatrixMarket-style coordinate listing of cell
// loads:
//
//	%%MatrixMarket matrix coordinate integer general   (optional banner)
//	% comments
//	<rows> <cols> <nnz>
//	<row> <col> <load>    (1-based, one entry per line)
//
// Unlisted cells are zero; listing a cell twice is malformed. All
// dimensions and loads are validated against the package decode caps
// before allocation; malformed input returns a typed error, never a
// panic.
func LoadMatrix(r io.Reader) (*Matrix, error) {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	line := 0
	errf := func(format string, args ...interface{}) error {
		return fmt.Errorf("%w: line %d: %s", ErrFormat, line, fmt.Sprintf(format, args...))
	}
	next := func() ([]string, error) {
		for s.Scan() {
			line++
			t := strings.TrimSpace(s.Text())
			if t == "" || t[0] == '#' {
				continue
			}
			if t[0] == '%' {
				if line == 1 && strings.HasPrefix(t, "%%MatrixMarket") {
					low := strings.ToLower(t)
					if !strings.Contains(low, "coordinate") || !strings.Contains(low, "integer") {
						return nil, errf("unsupported MatrixMarket banner %q", t)
					}
				}
				continue
			}
			return strings.Fields(t), nil
		}
		if err := s.Err(); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, line+1, err)
		}
		return nil, nil
	}
	// parse bounds a token in [lo, hi]; exceeding a *decode cap* is
	// ErrTooLarge, exceeding a bound declared by the input itself (an
	// index or count inconsistent with the size line) is ErrFormat.
	parse := func(tok, what string, lo, hi int64, capped bool) (int64, error) {
		v, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return 0, errf("bad %s %q", what, tok)
		}
		if v < lo {
			return 0, errf("%s %d below %d", what, v, lo)
		}
		if v > hi {
			if capped {
				return 0, fmt.Errorf("%w: line %d: %s %d exceeds cap %d", ErrTooLarge, line, what, v, hi)
			}
			return 0, errf("%s %d exceeds %d", what, v, hi)
		}
		return v, nil
	}

	hdr, err := next()
	if err != nil {
		return nil, err
	}
	if hdr == nil {
		return nil, ErrEmpty
	}
	if len(hdr) != 3 {
		return nil, errf("size line wants 'rows cols nnz', got %d fields", len(hdr))
	}
	rows, err := parse(hdr[0], "row count", 1, MaxDim, true)
	if err != nil {
		return nil, err
	}
	cols, err := parse(hdr[1], "column count", 1, MaxDim, true)
	if err != nil {
		return nil, err
	}
	if rows*cols > MaxCells {
		return nil, fmt.Errorf("%w: %dx%d exceeds %d cells", ErrTooLarge, rows, cols, MaxCells)
	}
	nnz, err := parse(hdr[2], "entry count", 0, rows*cols, false)
	if err != nil {
		return nil, err
	}
	cells := make([]int64, rows*cols)
	set := make([]bool, rows*cols)
	for k := int64(0); k < nnz; k++ {
		fields, err := next()
		if err != nil {
			return nil, err
		}
		if fields == nil {
			return nil, fmt.Errorf("%w: %d entries for declared %d", ErrFormat, k, nnz)
		}
		if len(fields) != 3 {
			return nil, errf("entry wants 'row col load', got %d fields", len(fields))
		}
		rr, err := parse(fields[0], "row index", 1, rows, false)
		if err != nil {
			return nil, err
		}
		cc, err := parse(fields[1], "column index", 1, cols, false)
		if err != nil {
			return nil, err
		}
		v, err := parse(fields[2], "load", 0, MaxCellLoad, true)
		if err != nil {
			return nil, err
		}
		idx := (rr-1)*cols + cc - 1
		if set[idx] {
			return nil, errf("cell (%d,%d) listed twice", rr, cc)
		}
		set[idx] = true
		cells[idx] = v
	}
	if extra, err := next(); err != nil {
		return nil, err
	} else if extra != nil {
		return nil, errf("trailing content after %d entries", nnz)
	}
	return NewMatrix(int(rows), int(cols), cells)
}
