package spatial

import (
	"errors"
	"fmt"
)

// Decode and construction caps, mirroring internal/graph's policy:
// loaders reject inputs above these bounds before allocating.
const (
	// MaxDim bounds each matrix dimension.
	MaxDim = 1 << 12
	// MaxCells bounds rows×cols.
	MaxCells = 1 << 22
	// MaxCellLoad bounds one cell's load; MaxCells such cells still sum
	// below 2^52, keeping float64 weights exact.
	MaxCellLoad = 1 << 30
)

// Typed construction/loader errors.
var (
	// ErrFormat reports malformed loader input. Loaders never panic on
	// bad input.
	ErrFormat = errors.New("spatial: malformed input")
	// ErrTooLarge reports input exceeding the decode caps.
	ErrTooLarge = errors.New("spatial: input exceeds size caps")
	// ErrEmpty reports a matrix with no cells or zero total load.
	ErrEmpty = errors.New("spatial: empty matrix")
)

// Matrix is an immutable 2D non-negative load matrix held as a prefix-sum
// table, so any axis-aligned rectangle's load is four lookups. All
// spatial Problems over the same instance share one Matrix.
type Matrix struct {
	rows, cols int
	pre        []int64 // (rows+1)×(cols+1) inclusive 2D prefix sums
	total      int64
}

// NewMatrix builds a Matrix from row-major cell loads. Loads must lie in
// [0, MaxCellLoad] and sum to at least 1.
func NewMatrix(rows, cols int, cells []int64) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, ErrEmpty
	}
	if rows > MaxDim || cols > MaxDim || rows*cols > MaxCells {
		return nil, fmt.Errorf("%w: %dx%d matrix (caps %d per dim, %d cells)", ErrTooLarge, rows, cols, MaxDim, MaxCells)
	}
	if len(cells) != rows*cols {
		return nil, fmt.Errorf("%w: %d cells for %dx%d", ErrFormat, len(cells), rows, cols)
	}
	m := &Matrix{rows: rows, cols: cols, pre: make([]int64, (rows+1)*(cols+1))}
	w := cols + 1
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := cells[r*cols+c]
			if v < 0 || v > MaxCellLoad {
				return nil, fmt.Errorf("%w: cell (%d,%d) load %d outside [0, %d]", ErrFormat, r, c, v, int64(MaxCellLoad))
			}
			m.pre[(r+1)*w+c+1] = v + m.pre[r*w+c+1] + m.pre[(r+1)*w+c] - m.pre[r*w+c]
		}
	}
	m.total = m.pre[rows*w+cols]
	if m.total < 1 {
		return nil, fmt.Errorf("%w: zero total load", ErrEmpty)
	}
	return m, nil
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// TotalLoad returns the whole matrix's load sum.
func (m *Matrix) TotalLoad() int64 { return m.total }

// Sum returns the load of the half-open rectangle [r0,r1)×[c0,c1).
func (m *Matrix) Sum(r0, c0, r1, c1 int) int64 {
	w := m.cols + 1
	return m.pre[r1*w+c1] - m.pre[r0*w+c1] - m.pre[r1*w+c0] + m.pre[r0*w+c0]
}
