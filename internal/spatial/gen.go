package spatial

import (
	"fmt"

	"bisectlb/internal/xrand"
)

func checkDims(rows, cols int) error {
	if rows < 1 || cols < 1 {
		return fmt.Errorf("%w: %dx%d", ErrFormat, rows, cols)
	}
	if rows > MaxDim || cols > MaxDim || rows*cols > MaxCells {
		return fmt.Errorf("%w: %dx%d", ErrTooLarge, rows, cols)
	}
	return nil
}

// UniformMatrix draws every cell load independently from [1, maxLoad] —
// the easy, near-homogeneous instance class where any cut is good.
func UniformMatrix(rows, cols int, maxLoad int64, seed uint64) (*Matrix, error) {
	if err := checkDims(rows, cols); err != nil {
		return nil, err
	}
	if maxLoad < 1 || maxLoad > MaxCellLoad {
		return nil, fmt.Errorf("%w: maxLoad %d", ErrFormat, maxLoad)
	}
	rng := xrand.New(xrand.Mix(seed, 0x4E1F))
	cells := make([]int64, rows*cols)
	for i := range cells {
		cells[i] = 1 + int64(rng.Uint64()%uint64(maxLoad))
	}
	return NewMatrix(rows, cols, cells)
}

// BlobMatrix places `blobs` seeded load peaks and decays each as
// peak/(1+d²) with Chebyshev distance d — clustered hotspots, the
// particle-density instance class where cut quality varies with depth.
// A unit background keeps every cell positive.
func BlobMatrix(rows, cols, blobs int, peak int64, seed uint64) (*Matrix, error) {
	if err := checkDims(rows, cols); err != nil {
		return nil, err
	}
	if blobs < 1 || peak < 1 || peak > MaxCellLoad/2 {
		return nil, fmt.Errorf("%w: blobs=%d peak=%d", ErrFormat, blobs, peak)
	}
	rng := xrand.New(xrand.Mix(seed, 0xB10B))
	cells := make([]int64, rows*cols)
	for i := range cells {
		cells[i] = 1
	}
	for b := 0; b < blobs; b++ {
		br, bc := rng.Intn(rows), rng.Intn(cols)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				dr, dc := r-br, c-bc
				if dr < 0 {
					dr = -dr
				}
				if dc < 0 {
					dc = -dc
				}
				d := int64(dr)
				if int64(dc) > d {
					d = int64(dc)
				}
				v := peak / (1 + d*d)
				if v > 0 && cells[r*cols+c] <= MaxCellLoad-v {
					cells[r*cols+c] += v
				}
			}
		}
	}
	return NewMatrix(rows, cols, cells)
}

// RidgeMatrix loads a diagonal band heavily and the rest lightly — the
// anisotropic instance class where one cut orientation is much better
// than the other.
func RidgeMatrix(rows, cols int, ridge int64, seed uint64) (*Matrix, error) {
	if err := checkDims(rows, cols); err != nil {
		return nil, err
	}
	if ridge < 1 || ridge > MaxCellLoad-8 {
		return nil, fmt.Errorf("%w: ridge %d", ErrFormat, ridge)
	}
	rng := xrand.New(xrand.Mix(seed, 0x21D6E))
	cells := make([]int64, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := 1 + int64(rng.Uint64()%8)
			// Band around the main diagonal scaled to the aspect ratio.
			if d := r*cols - c*rows; d > -2*cols && d < 2*cols {
				v += ridge
			}
			cells[r*cols+c] = v
		}
	}
	return NewMatrix(rows, cols, cells)
}
