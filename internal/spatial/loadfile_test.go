package spatial

import (
	"os"
	"path/filepath"
	"testing"
)

func TestTestdataInstance(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "hotspots.mtx"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := LoadMatrix(f)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 8 || m.Cols() != 8 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	p := mustProblem(t, m, Config{Seed: 7})
	if leaves := exhaust(t, p, map[uint64]bool{}); leaves < 2 {
		t.Fatalf("checked-in instance did not split (%d leaves)", leaves)
	}
}
