package spatial

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzMatrixLoader hammers LoadMatrix with arbitrary bytes: it may
// reject input with one of the package's typed errors but must never
// panic, and anything accepted must be in-cap, positive-total, and
// deterministically re-loadable.
func FuzzMatrixLoader(f *testing.F) {
	f.Add([]byte("%%MatrixMarket matrix coordinate integer general\n3 3 2\n1 1 5\n2 2 7\n"))
	f.Add([]byte("2 2 1\n1 1 4\n"))
	f.Add([]byte("% comment\n1 1 1\n1 1 1\n"))
	f.Add([]byte("99999 2 0\n"))
	f.Add([]byte("2 2 2\n1 1 4\n1 1 5\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := LoadMatrix(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrFormat) && !errors.Is(err, ErrTooLarge) && !errors.Is(err, ErrEmpty) {
				t.Fatalf("untyped error %v", err)
			}
			return
		}
		if m.Rows() < 1 || m.Cols() < 1 || m.Rows() > MaxDim || m.Cols() > MaxDim || m.Rows()*m.Cols() > MaxCells {
			t.Fatalf("accepted out-of-cap shape %dx%d", m.Rows(), m.Cols())
		}
		if m.TotalLoad() < 1 {
			t.Fatalf("accepted zero-load matrix")
		}
		m2, err := LoadMatrix(bytes.NewReader(data))
		if err != nil || m2.Rows() != m.Rows() || m2.Cols() != m.Cols() || m2.TotalLoad() != m.TotalLoad() {
			t.Fatal("reload diverged")
		}
	})
}
