package spatial

import (
	"fmt"
	"math"
	"sync"

	"bisectlb/internal/bisect"
	"bisectlb/internal/xrand"
)

// DefaultAlpha is the declared bisector quality when Config.Alpha is
// zero: a cut line is only accepted when its lighter side carries at
// least this fraction of the rectangle's load.
const DefaultAlpha = 0.1

// Config parameterises a root spatial Problem.
type Config struct {
	// Alpha ∈ (0, 0.5] is the declared bisector quality: Bisect only
	// performs cuts whose lighter side holds ≥ Alpha·W; rectangles with
	// no such cut become final parts. 0 selects DefaultAlpha.
	Alpha float64
	// Seed is the root problem ID; 0 selects 1.
	Seed uint64
	// Recorder, when non-nil, receives every performed bisection.
	Recorder *bisect.AlphaRecorder
}

// Problem is an axis-aligned rectangle of a load Matrix implementing
// bisect.Problem. Bisect cuts along the horizontal or vertical line
// that best balances the two sides — the recursive-bisection step of
// spatially-located rectangular partitioning — and is fully
// deterministic: no randomness enters the cut choice, and child IDs
// derive from the parent's.
type Problem struct {
	m              *Matrix
	r0, c0, r1, c1 int
	id             uint64
	depth          int
	alpha          float64
	rec            *bisect.AlphaRecorder

	once sync.Once
	ok   bool
	horz bool // cut orientation: true = horizontal line (splits rows)
	at   int  // cut coordinate: rows [r0,at)+[at,r1) or cols likewise
}

// New wraps the whole matrix as a root Problem.
func New(m *Matrix, cfg Config) (*Problem, error) {
	if m == nil || m.total < 1 {
		return nil, ErrEmpty
	}
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	if !(alpha > 0 && alpha <= 0.5) || math.IsNaN(alpha) {
		return nil, fmt.Errorf("%w: alpha %v outside (0, 0.5]", ErrFormat, cfg.Alpha)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Problem{m: m, r1: m.rows, c1: m.cols, id: seed, alpha: alpha, rec: cfg.Recorder}, nil
}

// Bounds returns the problem's rectangle as half-open [r0,r1)×[c0,c1).
func (p *Problem) Bounds() (r0, c0, r1, c1 int) { return p.r0, p.c0, p.r1, p.c1 }

// ID returns the problem's unique identifier within its tree.
func (p *Problem) ID() uint64 { return p.id }

// Weight returns the rectangle's load. Construction caps keep totals
// below 2^52, so the value is exact and children sum exactly to parents.
func (p *Problem) Weight() float64 { return float64(p.weight()) }

func (p *Problem) weight() int64 { return p.m.Sum(p.r0, p.c0, p.r1, p.c1) }

// Alpha returns the declared bisector quality every performed cut meets.
func (p *Problem) Alpha() float64 { return p.alpha }

// bestCut scans every horizontal and vertical cut line of the rectangle
// for the most balanced split (largest lighter side). Ties prefer
// cutting the longer axis — keeping rectangles square-ish, the usual
// rectangular-partitioning heuristic — then the smaller coordinate.
func (p *Problem) bestCut() {
	p.once.Do(func() {
		w := p.weight()
		if w < 1 {
			return
		}
		bestMin := int64(-1)
		consider := func(horz bool, at int, w1 int64) {
			mn := w1
			if w-w1 < mn {
				mn = w - w1
			}
			better := mn > bestMin
			if mn == bestMin && horz != p.horz {
				// Tie across orientations: prefer cutting the longer axis.
				better = horz == (p.r1-p.r0 >= p.c1-p.c0)
			}
			if better {
				bestMin, p.horz, p.at = mn, horz, at
			}
		}
		for r := p.r0 + 1; r < p.r1; r++ {
			consider(true, r, p.m.Sum(p.r0, p.c0, r, p.c1))
		}
		for c := p.c0 + 1; c < p.c1; c++ {
			consider(false, c, p.m.Sum(p.r0, c, p.r1, p.c1))
		}
		p.ok = float64(bestMin) >= p.alpha*float64(w)
	})
}

// CanBisect reports whether some cut line satisfies the declared α:
// single-cell rectangles, and rectangles whose load is too concentrated
// for any α-balanced cut, become final parts.
func (p *Problem) CanBisect() bool {
	if p.r1-p.r0 < 2 && p.c1-p.c0 < 2 {
		return false
	}
	p.bestCut()
	return p.ok
}

// Bisect cuts at the best line, heavier side first (ties keep the
// top/left side first). Child IDs derive from the parent's exactly like
// the other substrates, so HF and PHF see identical trees. Each call
// records the realized α̂ with the configured recorder.
func (p *Problem) Bisect() (bisect.Problem, bisect.Problem) {
	if !p.CanBisect() {
		panic("spatial: Bisect called on indivisible problem")
	}
	a := &Problem{m: p.m, r0: p.r0, c0: p.c0, r1: p.r1, c1: p.c1, depth: p.depth + 1, alpha: p.alpha, rec: p.rec}
	b := &Problem{m: p.m, r0: p.r0, c0: p.c0, r1: p.r1, c1: p.c1, depth: p.depth + 1, alpha: p.alpha, rec: p.rec}
	if p.horz {
		a.r1, b.r0 = p.at, p.at
	} else {
		a.c1, b.c0 = p.at, p.at
	}
	if b.weight() > a.weight() {
		a, b = b, a
	}
	a.id, b.id = xrand.Mix(p.id, 1), xrand.Mix(p.id, 2)
	p.rec.Record(p.depth, p.Weight(), a.Weight(), b.Weight())
	return a, b
}
