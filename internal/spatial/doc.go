// Package spatial provides the second real-instance bisector backend:
// axis-aligned rectangles of a 2D load matrix, bisected by the best
// horizontal or vertical cut line — the recursive-bisection step of
// spatially-located rectangular partitioning (Saule et al., PAPERS.md).
//
// Cut selection is exhaustive over the rectangle's cut lines via a
// prefix-sum Matrix, so bisection is deterministic with no randomness at
// all; the declared quality α is a Config knob (a cut is only performed
// when its lighter side holds ≥ α·W), and the realized per-cut α̂ flows
// through a bisect.AlphaRecorder for measured-bound (r_α̂) verification.
// See DESIGN.md §16 for the backend contract.
//
// Instances come from a MatrixMarket-style coordinate loader
// (LoadMatrix), hardened with decode caps and typed errors, and from
// deterministic generators (UniformMatrix, BlobMatrix, RidgeMatrix).
package spatial
