package spatial

import (
	"math"
	"testing"
	"testing/quick"

	"bisectlb/internal/bisect"
)

// exhaust recursively bisects p to leaves, asserting on every split:
// exact weight conservation, measured α̂ within the declared bound,
// heavy child first, distinct IDs, and disjoint covering rectangles.
func exhaust(t *testing.T, p *Problem, ids map[uint64]bool) int {
	t.Helper()
	if ids[p.ID()] {
		t.Fatalf("duplicate problem ID %d", p.ID())
	}
	ids[p.ID()] = true
	if !p.CanBisect() {
		return 1
	}
	a, b := p.Bisect()
	pa, pb := a.(*Problem), b.(*Problem)
	if a.Weight()+b.Weight() != p.Weight() {
		t.Fatalf("weight not conserved: %v + %v != %v", a.Weight(), b.Weight(), p.Weight())
	}
	if a.Weight() < b.Weight() {
		t.Fatal("heavy child must come first")
	}
	if ahat := b.Weight() / p.Weight(); ahat < p.Alpha() {
		t.Fatalf("measured α̂ %v below declared α %v", ahat, p.Alpha())
	}
	ar0, ac0, ar1, ac1 := pa.Bounds()
	br0, bc0, br1, bc1 := pb.Bounds()
	cells := func(r0, c0, r1, c1 int) int { return (r1 - r0) * (c1 - c0) }
	pr0, pc0, pr1, pc1 := p.Bounds()
	if cells(ar0, ac0, ar1, ac1)+cells(br0, bc0, br1, bc1) != cells(pr0, pc0, pr1, pc1) {
		t.Fatal("children do not tile the parent rectangle")
	}
	return exhaust(t, pa, ids) + exhaust(t, pb, ids)
}

func mustProblem(t *testing.T, m *Matrix, cfg Config) *Problem {
	t.Helper()
	p, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBisectInvariants(t *testing.T) {
	var rec bisect.AlphaRecorder
	builders := []func() (*Matrix, error){
		func() (*Matrix, error) { return UniformMatrix(17, 23, 9, 3) },
		func() (*Matrix, error) { return BlobMatrix(20, 20, 4, 5000, 11) },
		func() (*Matrix, error) { return RidgeMatrix(16, 24, 300, 5) },
		func() (*Matrix, error) { return NewMatrix(1, 2, []int64{4, 4}) },
	}
	for i, build := range builders {
		m, err := build()
		if err != nil {
			t.Fatal(err)
		}
		p := mustProblem(t, m, Config{Seed: uint64(i + 1), Recorder: &rec})
		if leaves := exhaust(t, p, map[uint64]bool{}); leaves < 2 {
			t.Fatalf("builder %d did not split", i)
		}
	}
	if rec.Count() == 0 {
		t.Fatal("recorder saw no bisections")
	}
	if rec.Min() < DefaultAlpha || rec.Min() > 0.5 {
		t.Fatalf("recorded min α̂ = %v outside [α, 0.5]", rec.Min())
	}
}

func TestBisectDeterministic(t *testing.T) {
	build := func() *Problem {
		m, err := BlobMatrix(15, 18, 3, 2000, 42)
		if err != nil {
			t.Fatal(err)
		}
		return mustProblem(t, m, Config{Seed: 99})
	}
	var walk func(p *Problem, out *[]uint64)
	walk = func(p *Problem, out *[]uint64) {
		r0, c0, r1, c1 := p.Bounds()
		*out = append(*out, p.ID(), uint64(r0), uint64(c0), uint64(r1), uint64(c1))
		if !p.CanBisect() {
			return
		}
		a, b := p.Bisect()
		walk(a.(*Problem), out)
		walk(b.(*Problem), out)
	}
	var t1, t2 []uint64
	walk(build(), &t1)
	walk(build(), &t2)
	if len(t1) != len(t2) {
		t.Fatalf("tree sizes differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("trees diverge at %d", i)
		}
	}
	p := build()
	a1, b1 := p.Bisect()
	a2, b2 := p.Bisect()
	if a1.ID() != a2.ID() || b1.ID() != b2.ID() || a1.Weight() != a2.Weight() || b1.Weight() != b2.Weight() {
		t.Fatal("same-object re-bisection diverged")
	}
}

func TestIndivisibleLeaf(t *testing.T) {
	m, err := NewMatrix(1, 1, []int64{7})
	if err != nil {
		t.Fatal(err)
	}
	p := mustProblem(t, m, Config{})
	if p.CanBisect() {
		t.Fatal("single cell must not bisect")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Bisect on indivisible problem must panic")
		}
	}()
	p.Bisect()
}

func TestConcentratedLoadIndivisible(t *testing.T) {
	// One cell dominates: no cut line reaches the declared α.
	m, err := NewMatrix(2, 2, []int64{1000, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	p := mustProblem(t, m, Config{Alpha: 0.25})
	if p.CanBisect() {
		t.Fatal("concentrated instance must be indivisible")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil matrix accepted")
	}
	m, err := NewMatrix(2, 2, []int64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(m, Config{Alpha: 0.7}); err == nil {
		t.Fatal("alpha > 0.5 accepted")
	}
	if _, err := New(m, Config{Alpha: math.NaN()}); err == nil {
		t.Fatal("NaN alpha accepted")
	}
	p := mustProblem(t, m, Config{})
	if p.ID() != 1 || p.Alpha() != DefaultAlpha {
		t.Fatalf("defaults = id %d, alpha %v", p.ID(), p.Alpha())
	}
}

// TestQuickBisect drives randomized generator parameters through the
// full invariant walk via testing/quick.
func TestQuickBisect(t *testing.T) {
	f := func(seed uint64, rowsRaw, colsRaw uint8, peakRaw uint16) bool {
		rows := 1 + int(rowsRaw)%24
		cols := 1 + int(colsRaw)%24
		peak := 1 + int64(peakRaw)%5000
		m, err := BlobMatrix(rows, cols, 2, peak, seed)
		if err != nil {
			t.Logf("gen: %v", err)
			return false
		}
		p, err := New(m, Config{Seed: seed | 1})
		if err != nil {
			t.Logf("new: %v", err)
			return false
		}
		exhaust(t, p, map[uint64]bool{})
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
