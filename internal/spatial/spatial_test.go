package spatial

import (
	"errors"
	"strings"
	"testing"
)

func TestNewMatrixValidation(t *testing.T) {
	if _, err := NewMatrix(0, 3, nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("0 rows: %v", err)
	}
	if _, err := NewMatrix(MaxDim+1, 1, nil); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("over dim cap: %v", err)
	}
	if _, err := NewMatrix(2, 2, []int64{1, 2, 3}); !errors.Is(err, ErrFormat) {
		t.Fatalf("cell count mismatch: %v", err)
	}
	if _, err := NewMatrix(2, 2, []int64{1, -1, 0, 0}); !errors.Is(err, ErrFormat) {
		t.Fatalf("negative load: %v", err)
	}
	if _, err := NewMatrix(2, 2, []int64{0, 0, 0, 0}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("zero total: %v", err)
	}
}

func TestMatrixSums(t *testing.T) {
	m, err := NewMatrix(3, 4, []int64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 4 || m.TotalLoad() != 78 {
		t.Fatalf("shape = %d/%d/%d", m.Rows(), m.Cols(), m.TotalLoad())
	}
	if got := m.Sum(0, 0, 3, 4); got != 78 {
		t.Fatalf("full sum = %d", got)
	}
	if got := m.Sum(1, 1, 3, 3); got != 6+7+10+11 {
		t.Fatalf("inner sum = %d", got)
	}
	if got := m.Sum(2, 3, 3, 4); got != 12 {
		t.Fatalf("corner sum = %d", got)
	}
	if got := m.Sum(1, 1, 1, 1); got != 0 {
		t.Fatalf("empty sum = %d", got)
	}
}

func TestBestCutOrientation(t *testing.T) {
	// Uniform 2x4: the middle vertical cut and the horizontal cut both
	// split 12|12, so the orientation tie prefers the longer axis (cols).
	m, err := NewMatrix(2, 4, []int64{
		3, 3, 3, 3,
		3, 3, 3, 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.CanBisect() {
		t.Fatal("must bisect")
	}
	a, b := p.Bisect()
	pa, pb := a.(*Problem), b.(*Problem)
	if pa.Weight() < pb.Weight() {
		t.Fatal("heavy child first")
	}
	r0, c0, r1, c1 := pa.Bounds()
	if r1-r0 != 2 || c1-c0 != 2 {
		t.Fatalf("expected vertical cut, heavy bounds = [%d,%d)x[%d,%d)", r0, r1, c0, c1)
	}
	if pa.Weight()+pb.Weight() != p.Weight() {
		t.Fatal("weight not conserved")
	}
}

func TestLoadMatrix(t *testing.T) {
	const src = `%%MatrixMarket matrix coordinate integer general
% a sparse 3x3 load map
3 3 4
1 1 5
2 2 7
3 1 2
3 3 1
`
	m, err := LoadMatrix(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 3 || m.TotalLoad() != 15 {
		t.Fatalf("shape = %d/%d/%d", m.Rows(), m.Cols(), m.TotalLoad())
	}
	if got := m.Sum(2, 0, 3, 1); got != 2 {
		t.Fatalf("cell (3,1) = %d", got)
	}
}

func TestLoadMatrixErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want error
	}{
		{"empty", "", ErrEmpty},
		{"comments only", "% nothing\n", ErrEmpty},
		{"bad banner", "%%MatrixMarket matrix array real general\n2 2 0\n", ErrFormat},
		{"size fields", "2 2\n", ErrFormat},
		{"zero rows", "0 2 0\n", ErrFormat},
		{"over dim", "99999 2 0\n", ErrTooLarge},
		{"over cells", "4096 4096 0\n", ErrTooLarge},
		{"nnz over cells", "2 2 5\n", ErrFormat},
		{"entry fields", "2 2 1\n1 1\n", ErrFormat},
		{"row range", "2 2 1\n3 1 4\n", ErrFormat},
		{"negative load", "2 2 1\n1 1 -4\n", ErrFormat},
		{"load cap", "2 2 1\n1 1 99999999999\n", ErrTooLarge},
		{"duplicate cell", "2 2 2\n1 1 4\n1 1 5\n", ErrFormat},
		{"missing entries", "2 2 2\n1 1 4\n", ErrFormat},
		{"trailing", "2 2 1\n1 1 4\n2 2 5\n", ErrFormat},
		{"all zero", "2 2 1\n1 1 0\n", ErrEmpty},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := LoadMatrix(strings.NewReader(c.src)); !errors.Is(err, c.want) {
				t.Fatalf("err = %v, want %v", err, c.want)
			}
		})
	}
}

func TestGenerators(t *testing.T) {
	u, err := UniformMatrix(8, 9, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if u.Rows() != 8 || u.Cols() != 9 || u.TotalLoad() < 72 {
		t.Fatalf("uniform = %d/%d/%d", u.Rows(), u.Cols(), u.TotalLoad())
	}
	b, err := BlobMatrix(12, 12, 3, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if b.TotalLoad() <= 144 {
		t.Fatalf("blob total %d has no blobs", b.TotalLoad())
	}
	r, err := RidgeMatrix(10, 14, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalLoad() <= 140 {
		t.Fatalf("ridge total %d has no ridge", r.TotalLoad())
	}
	if _, err := UniformMatrix(0, 3, 5, 1); !errors.Is(err, ErrFormat) {
		t.Fatalf("bad uniform: %v", err)
	}
	if _, err := BlobMatrix(3, 3, 0, 5, 1); !errors.Is(err, ErrFormat) {
		t.Fatalf("bad blob: %v", err)
	}
	if _, err := RidgeMatrix(3, 3, 0, 1); !errors.Is(err, ErrFormat) {
		t.Fatalf("bad ridge: %v", err)
	}
	// Same seed → same matrix.
	u2, err := UniformMatrix(8, 9, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if u2.TotalLoad() != u.TotalLoad() {
		t.Fatal("generator not deterministic")
	}
}
