// Package topology models interconnection networks for the simulated
// parallel machine. The paper analyses its algorithms under idealised
// assumptions — unit-cost transmission and ⌈log2 N⌉-cost global operations,
// noting they hold "on many realistic architectures with at most
// logarithmic slowdown" — and its conclusion stresses that the choice
// among HF/PHF/BA/BA-HF "must take into account the characteristics of the
// parallel machine architecture". This package supplies those
// characteristics: per-hop point-to-point distances and collective costs
// for the classic topologies (complete graph, hypercube, 2-D mesh, ring,
// fat-tree), so internal/machine can re-run the algorithms under each and
// the experiments can show where the idealised conclusions bend.
package topology

import (
	"fmt"
	"math"
	"math/bits"
)

// Topology describes an interconnection network on processors 0 … N−1.
type Topology interface {
	// Name identifies the topology in reports.
	Name() string
	// N returns the processor count.
	N() int
	// Distance returns the hop count between two processors; transmitting
	// a subproblem costs CostSend × Distance time units.
	Distance(i, j int) int64
	// CollectiveCost returns the time for one global operation (barrier,
	// reduction, prefix computation) on the full machine.
	CollectiveCost() int64
	// Diameter returns the maximum distance between any two processors.
	Diameter() int64
}

func checkN(n int) {
	if n < 1 {
		panic(fmt.Sprintf("topology: processor count %d must be ≥ 1", n))
	}
}

func checkPair(t Topology, i, j int) {
	if i < 0 || i >= t.N() || j < 0 || j >= t.N() {
		panic(fmt.Sprintf("topology: processors (%d, %d) out of range [0, %d)", i, j, t.N()))
	}
}

func log2ceil(n int) int64 {
	if n <= 1 {
		return 0
	}
	return int64(bits.Len(uint(n - 1)))
}

// Complete is the paper's idealised machine: every pair one hop apart,
// collectives in ⌈log2 N⌉.
type Complete struct{ n int }

// NewComplete builds the idealised machine.
func NewComplete(n int) *Complete {
	checkN(n)
	return &Complete{n: n}
}

// Name implements Topology.
func (c *Complete) Name() string { return "complete" }

// N implements Topology.
func (c *Complete) N() int { return c.n }

// Distance implements Topology.
func (c *Complete) Distance(i, j int) int64 {
	checkPair(c, i, j)
	if i == j {
		return 0
	}
	return 1
}

// CollectiveCost implements Topology.
func (c *Complete) CollectiveCost() int64 { return log2ceil(c.n) }

// Diameter implements Topology.
func (c *Complete) Diameter() int64 {
	if c.n == 1 {
		return 0
	}
	return 1
}

// Hypercube connects processors whose ids differ in one bit. N is rounded
// up to a power of two for addressing; ids ≥ N simply do not occur.
type Hypercube struct {
	n   int
	dim int
}

// NewHypercube builds a hypercube covering n processors.
func NewHypercube(n int) *Hypercube {
	checkN(n)
	return &Hypercube{n: n, dim: int(log2ceil(n))}
}

// Name implements Topology.
func (h *Hypercube) Name() string { return "hypercube" }

// N implements Topology.
func (h *Hypercube) N() int { return h.n }

// Distance is the Hamming distance of the ids.
func (h *Hypercube) Distance(i, j int) int64 {
	checkPair(h, i, j)
	return int64(bits.OnesCount(uint(i ^ j)))
}

// CollectiveCost is one sweep over the dimensions.
func (h *Hypercube) CollectiveCost() int64 { return int64(h.dim) }

// Diameter implements Topology.
func (h *Hypercube) Diameter() int64 { return int64(h.dim) }

// Mesh2D is a √N × √N grid without wraparound. Collectives run along rows
// then columns, costing Θ(√N) — the topology where the paper's O(log N)
// collective assumption visibly fails.
type Mesh2D struct {
	n    int
	side int
}

// NewMesh2D builds the smallest square mesh covering n processors.
func NewMesh2D(n int) *Mesh2D {
	checkN(n)
	side := int(math.Ceil(math.Sqrt(float64(n))))
	return &Mesh2D{n: n, side: side}
}

// Name implements Topology.
func (m *Mesh2D) Name() string { return "mesh2d" }

// N implements Topology.
func (m *Mesh2D) N() int { return m.n }

func (m *Mesh2D) coords(i int) (x, y int) { return i % m.side, i / m.side }

// Distance is the Manhattan distance on the grid.
func (m *Mesh2D) Distance(i, j int) int64 {
	checkPair(m, i, j)
	xi, yi := m.coords(i)
	xj, yj := m.coords(j)
	return int64(abs(xi-xj) + abs(yi-yj))
}

// CollectiveCost is a row sweep plus a column sweep.
func (m *Mesh2D) CollectiveCost() int64 {
	if m.side <= 1 {
		return 0
	}
	return int64(2 * (m.side - 1))
}

// Diameter implements Topology.
func (m *Mesh2D) Diameter() int64 {
	rows := (m.n + m.side - 1) / m.side
	return int64(m.side - 1 + rows - 1)
}

// Ring connects each processor to its two neighbours.
type Ring struct{ n int }

// NewRing builds a bidirectional ring.
func NewRing(n int) *Ring {
	checkN(n)
	return &Ring{n: n}
}

// Name implements Topology.
func (r *Ring) Name() string { return "ring" }

// N implements Topology.
func (r *Ring) N() int { return r.n }

// Distance is the shorter way around.
func (r *Ring) Distance(i, j int) int64 {
	checkPair(r, i, j)
	d := abs(i - j)
	if alt := r.n - d; alt < d {
		d = alt
	}
	return int64(d)
}

// CollectiveCost is half the ring (recursive doubling is unavailable).
func (r *Ring) CollectiveCost() int64 { return int64(r.n / 2) }

// Diameter implements Topology.
func (r *Ring) Diameter() int64 { return int64(r.n / 2) }

// FatTree is a complete binary fat-tree with the processors at the leaves;
// the distance between two leaves is twice the level of their lowest
// common ancestor. Link capacities are assumed to scale with level (the
// "fat" part), so collectives cost 2·⌈log2 N⌉ without contention.
type FatTree struct{ n int }

// NewFatTree builds a fat-tree over n leaf processors.
func NewFatTree(n int) *FatTree {
	checkN(n)
	return &FatTree{n: n}
}

// Name implements Topology.
func (f *FatTree) Name() string { return "fat-tree" }

// N implements Topology.
func (f *FatTree) N() int { return f.n }

// Distance is up to the lowest common ancestor and back down.
func (f *FatTree) Distance(i, j int) int64 {
	checkPair(f, i, j)
	if i == j {
		return 0
	}
	return 2 * int64(bits.Len(uint(i^j)))
}

// CollectiveCost is an up-sweep and a down-sweep of the tree.
func (f *FatTree) CollectiveCost() int64 { return 2 * log2ceil(f.n) }

// Diameter implements Topology.
func (f *FatTree) Diameter() int64 {
	if f.n == 1 {
		return 0
	}
	return 2 * log2ceil(f.n)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// All returns one instance of every topology at the given size, idealised
// machine first.
func All(n int) []Topology {
	return []Topology{
		NewComplete(n),
		NewHypercube(n),
		NewFatTree(n),
		NewMesh2D(n),
		NewRing(n),
	}
}
