package topology

import (
	"testing"
	"testing/quick"

	"bisectlb/internal/xrand"
)

func TestMetricAxioms(t *testing.T) {
	rng := xrand.New(1)
	for _, topo := range All(64) {
		f := func(seed uint64) bool {
			rng.Reseed(seed)
			i := rng.Intn(topo.N())
			j := rng.Intn(topo.N())
			k := rng.Intn(topo.N())
			dij := topo.Distance(i, j)
			// Identity, symmetry, triangle inequality, diameter.
			if topo.Distance(i, i) != 0 {
				return false
			}
			if dij != topo.Distance(j, i) {
				return false
			}
			if i != j && dij < 1 {
				return false
			}
			if dij > topo.Diameter() {
				return false
			}
			return topo.Distance(i, k) <= dij+topo.Distance(j, k)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("%s: %v", topo.Name(), err)
		}
	}
}

func TestKnownDistances(t *testing.T) {
	h := NewHypercube(16)
	if h.Distance(0b0000, 0b1111) != 4 {
		t.Fatal("hypercube distance wrong")
	}
	if h.Distance(5, 4) != 1 {
		t.Fatal("hypercube neighbour wrong")
	}
	m := NewMesh2D(16) // 4×4
	if m.Distance(0, 15) != 6 {
		t.Fatalf("mesh corner distance = %d, want 6", m.Distance(0, 15))
	}
	if m.Distance(0, 1) != 1 || m.Distance(0, 4) != 1 {
		t.Fatal("mesh neighbours wrong")
	}
	r := NewRing(10)
	if r.Distance(0, 9) != 1 || r.Distance(0, 5) != 5 {
		t.Fatal("ring distances wrong")
	}
	ft := NewFatTree(8)
	if ft.Distance(0, 1) != 2 {
		t.Fatalf("fat-tree sibling distance = %d, want 2", ft.Distance(0, 1))
	}
	if ft.Distance(0, 7) != 6 {
		t.Fatalf("fat-tree cross distance = %d, want 6", ft.Distance(0, 7))
	}
	c := NewComplete(8)
	if c.Distance(3, 5) != 1 || c.Distance(2, 2) != 0 {
		t.Fatal("complete distances wrong")
	}
}

func TestCollectiveCostOrdering(t *testing.T) {
	const n = 1024
	complete := NewComplete(n).CollectiveCost()
	cube := NewHypercube(n).CollectiveCost()
	tree := NewFatTree(n).CollectiveCost()
	mesh := NewMesh2D(n).CollectiveCost()
	ring := NewRing(n).CollectiveCost()
	if complete != 10 || cube != 10 {
		t.Fatalf("log-collectives wrong: complete=%d cube=%d", complete, cube)
	}
	if tree != 20 {
		t.Fatalf("fat-tree collective = %d, want 20", tree)
	}
	if mesh != 62 {
		t.Fatalf("mesh collective = %d, want 62", mesh)
	}
	if ring != 512 {
		t.Fatalf("ring collective = %d, want 512", ring)
	}
	if !(complete <= tree && tree < mesh && mesh < ring) {
		t.Fatal("collective cost ordering broken")
	}
}

func TestAllCoversEverything(t *testing.T) {
	names := map[string]bool{}
	for _, topo := range All(32) {
		if topo.N() != 32 {
			t.Fatalf("%s has N=%d", topo.Name(), topo.N())
		}
		names[topo.Name()] = true
	}
	for _, want := range []string{"complete", "hypercube", "fat-tree", "mesh2d", "ring"} {
		if !names[want] {
			t.Fatalf("All missing %s", want)
		}
	}
}

func TestSingleProcessorDegenerate(t *testing.T) {
	for _, topo := range All(1) {
		if topo.Diameter() != 0 || topo.CollectiveCost() < 0 {
			t.Fatalf("%s: degenerate size broken", topo.Name())
		}
		if topo.Distance(0, 0) != 0 {
			t.Fatalf("%s: self distance nonzero", topo.Name())
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range pair accepted")
		}
	}()
	NewMesh2D(9).Distance(0, 9)
}
