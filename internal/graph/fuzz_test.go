package graph

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzGraphLoader hammers both text loaders with arbitrary bytes. The
// contract under fuzz: loaders may reject input (with one of the
// package's typed errors) but must never panic, and anything they do
// accept must be structurally sound and re-loadable deterministically.
func FuzzGraphLoader(f *testing.F) {
	f.Add([]byte("3 2\n2\n1 3\n2\n"))
	f.Add([]byte("% comment\n6 7 11\n2 2 1 4 2\n1 1 1 3 3 5 1\n4 2 3 6 4\n3 1 2 5 6\n2 2 1 4 6 6 1\n5 3 4 5 1\n"))
	f.Add([]byte("3 4 11\n2 1 2\n7 2 3 4\n1 1 4\n3\n1\n2\n5\n"))
	f.Add([]byte("1 0\n\n"))
	f.Add([]byte("2 1\n-2\n1\n"))
	f.Add([]byte("99999999 0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		for i, load := range []func(*bytes.Reader) (*Hypergraph, error){
			func(r *bytes.Reader) (*Hypergraph, error) { return LoadGraph(r) },
			func(r *bytes.Reader) (*Hypergraph, error) { return LoadHypergraph(r) },
		} {
			h, err := load(bytes.NewReader(data))
			if err != nil {
				if !errors.Is(err, ErrFormat) && !errors.Is(err, ErrTooLarge) && !errors.Is(err, ErrEmpty) {
					t.Fatalf("loader %d: untyped error %v", i, err)
				}
				continue
			}
			if h.NumVertices() < 1 || h.NumVertices() > MaxVertices || h.NumPins() > MaxPins {
				t.Fatalf("loader %d: accepted out-of-cap shape %d/%d", i, h.NumVertices(), h.NumPins())
			}
			if h.TotalWeight() < int64(h.NumVertices()) {
				t.Fatalf("loader %d: total %d below vertex count", i, h.TotalWeight())
			}
			h2, err := load(bytes.NewReader(data))
			if err != nil || h2.NumVertices() != h.NumVertices() || h2.NumNets() != h.NumNets() || h2.TotalWeight() != h.TotalWeight() {
				t.Fatalf("loader %d: reload diverged", i)
			}
		}
	})
}
