package graph

import (
	"math"
	"testing"
	"testing/quick"

	"bisectlb/internal/bisect"
)

// exhaust recursively bisects p to leaves, asserting on every split:
// exact weight conservation, both children inside the balance band
// (α̂ ≥ AlphaFloor of the parent), heavy child first, distinct IDs.
func exhaust(t *testing.T, p *Problem, ids map[uint64]bool) int {
	t.Helper()
	if ids[p.ID()] {
		t.Fatalf("duplicate problem ID %d", p.ID())
	}
	ids[p.ID()] = true
	if !p.CanBisect() {
		// The LPT bound guarantees an in-band split whenever
		// floor(W/2) + wmax ≤ hiCap; refusing such an instance would
		// break the backend's completeness contract.
		if p.h.NumVertices() >= 2 && p.h.total/2+p.h.wmax <= p.hiCap() {
			t.Fatalf("refused to bisect a clearly feasible instance: nv=%d W=%d wmax=%d",
				p.h.NumVertices(), p.h.total, p.h.wmax)
		}
		return 1
	}
	a, b := p.Bisect()
	pa, pb := a.(*Problem), b.(*Problem)
	if pa.h.total+pb.h.total != p.h.total {
		t.Fatalf("weight not conserved: %d + %d != %d", pa.h.total, pb.h.total, p.h.total)
	}
	if a.Weight()+b.Weight() != p.Weight() {
		t.Fatalf("float weights inexact: %v + %v != %v", a.Weight(), b.Weight(), p.Weight())
	}
	if pa.h.total < pb.h.total {
		t.Fatal("heavy child must come first")
	}
	floor := p.AlphaFloor()
	if ahat := float64(pb.h.total) / float64(p.h.total); ahat < floor {
		t.Fatalf("measured α̂ %v below declared floor %v (W=%d split %d/%d)",
			ahat, floor, p.h.total, pa.h.total, pb.h.total)
	}
	return exhaust(t, pa, ids) + exhaust(t, pb, ids)
}

func mustProblem(t *testing.T, h *Hypergraph, cfg Config) *Problem {
	t.Helper()
	p, err := New(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBisectInvariants(t *testing.T) {
	var rec bisect.AlphaRecorder
	builders := []func() (*Hypergraph, error){
		func() (*Hypergraph, error) { return GridGraph(9, 13, 1, 3) },
		func() (*Hypergraph, error) { return GridGraph(16, 16, 5, 11) },
		func() (*Hypergraph, error) { return RingGraph(97, 20, 3, 5) },
		func() (*Hypergraph, error) { return RandomHypergraph(120, 90, 6, 4, 9) },
		func() (*Hypergraph, error) { return FromNets(2, []int64{1, 1}, [][]int32{{0, 1}}, nil) },
	}
	for i, build := range builders {
		h, err := build()
		if err != nil {
			t.Fatal(err)
		}
		p := mustProblem(t, h, Config{Seed: uint64(i + 1), Recorder: &rec})
		leaves := exhaust(t, p, map[uint64]bool{})
		if leaves < 2 {
			t.Fatalf("builder %d: tree did not split (leaves=%d)", i, leaves)
		}
	}
	if rec.Count() == 0 {
		t.Fatal("recorder saw no bisections")
	}
	if rec.Min() <= 0 || rec.Min() > 0.5 {
		t.Fatalf("recorded min α̂ = %v outside (0, 0.5]", rec.Min())
	}
	// Class bound: every instance used eps = DefaultEps, so the recorded
	// minimum must respect α = (1−ε)/2 up to the integer-floor slack of
	// the smallest parent weight (≥ 4 here → slack ≤ 1/4... use exact:
	// each parent's floor was checked in exhaust; here check the class
	// floor loosely).
	if rec.Min() < (1-DefaultEps)/2-0.25 {
		t.Fatalf("recorded min α̂ = %v implausibly low", rec.Min())
	}
}

func TestBisectDeterministic(t *testing.T) {
	build := func() *Problem {
		h, err := RandomHypergraph(80, 60, 5, 6, 42)
		if err != nil {
			t.Fatal(err)
		}
		return mustProblem(t, h, Config{Seed: 99})
	}
	var walk func(p *Problem, out *[]uint64)
	walk = func(p *Problem, out *[]uint64) {
		*out = append(*out, p.ID(), uint64(p.h.total))
		if !p.CanBisect() {
			return
		}
		a, b := p.Bisect()
		walk(a.(*Problem), out)
		walk(b.(*Problem), out)
	}
	var t1, t2 []uint64
	walk(build(), &t1)
	walk(build(), &t2)
	if len(t1) != len(t2) {
		t.Fatalf("tree sizes differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("trees diverge at %d: %d vs %d", i, t1[i], t2[i])
		}
	}
	// Re-bisecting the same problem object must also reproduce children.
	p := build()
	a1, b1 := p.Bisect()
	a2, b2 := p.Bisect()
	if a1.ID() != a2.ID() || b1.ID() != b2.ID() || a1.Weight() != a2.Weight() || b1.Weight() != b2.Weight() {
		t.Fatal("same-object re-bisection diverged")
	}
}

func TestIndivisibleLeaf(t *testing.T) {
	h, err := FromNets(1, []int64{5}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := mustProblem(t, h, Config{})
	if p.CanBisect() {
		t.Fatal("single vertex must not bisect")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Bisect on indivisible problem must panic")
		}
	}()
	p.Bisect()
}

func TestHeavyVertexIndivisible(t *testing.T) {
	// One vertex carries almost all weight: no in-band split exists.
	h, err := FromNets(3, []int64{1000, 1, 1}, [][]int32{{0, 1}, {1, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := mustProblem(t, h, Config{})
	if p.CanBisect() {
		t.Fatal("dominant-vertex instance must be indivisible")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil hypergraph accepted")
	}
	h, err := FromNets(2, nil, [][]int32{{0, 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(h, Config{Eps: 1.5}); err == nil {
		t.Fatal("eps ≥ 1 accepted")
	}
	if _, err := New(h, Config{Eps: math.NaN()}); err == nil {
		t.Fatal("NaN eps accepted")
	}
	p := mustProblem(t, h, Config{})
	if p.ID() != 1 {
		t.Fatalf("default seed id = %d, want 1", p.ID())
	}
	if got := p.Alpha(); math.Abs(got-(1-DefaultEps)/2) > 1e-15 {
		t.Fatalf("class alpha = %v", got)
	}
}

// TestQuickBisect drives randomized generator parameters through the
// full invariant walk via testing/quick.
func TestQuickBisect(t *testing.T) {
	f := func(seed uint64, nvRaw uint8, spreadRaw uint8) bool {
		nv := 2 + int(nvRaw)%120
		spread := 1 + int64(spreadRaw)%8
		h, err := RingGraph(nv+3, nv/3, spread, seed)
		if err != nil {
			t.Logf("gen: %v", err)
			return false
		}
		p, err := New(h, Config{Seed: seed | 1})
		if err != nil {
			t.Logf("new: %v", err)
			return false
		}
		exhaust(t, p, map[uint64]bool{})
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
