package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// maxLineBytes caps a single input line; longer lines are malformed
// rather than a reason to grow buffers without bound.
const maxLineBytes = 1 << 20

// lineScanner wraps bufio.Scanner with the comment/blank-line policy
// shared by both loaders: '%' and '#' start comment lines, blank lines
// are skipped, and the token buffer is capped.
type lineScanner struct {
	s    *bufio.Scanner
	line int
}

func newLineScanner(r io.Reader) *lineScanner {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	return &lineScanner{s: s}
}

// next returns the fields of the next non-comment, non-blank line, or
// nil at EOF. err surfaces scanner failures (e.g. an over-long line).
func (ls *lineScanner) next() ([]string, error) {
	for ls.s.Scan() {
		ls.line++
		t := strings.TrimSpace(ls.s.Text())
		if t == "" || t[0] == '%' || t[0] == '#' {
			continue
		}
		return strings.Fields(t), nil
	}
	if err := ls.s.Err(); err != nil {
		return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, ls.line+1, err)
	}
	return nil, nil
}

func (ls *lineScanner) errf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: line %d: %s", ErrFormat, ls.line, fmt.Sprintf(format, args...))
}

func parsePos(ls *lineScanner, tok, what string, cap int64) (int64, error) {
	v, err := strconv.ParseInt(tok, 10, 64)
	if err != nil {
		return 0, ls.errf("bad %s %q", what, tok)
	}
	if v < 0 {
		return 0, ls.errf("negative %s %d", what, v)
	}
	if v > cap {
		return 0, fmt.Errorf("%w: line %d: %s %d exceeds cap %d", ErrTooLarge, ls.line, what, v, cap)
	}
	return v, nil
}

// LoadGraph parses a Metis/Chaco-style plain-text graph:
//
//	% comments start with '%' or '#'
//	<nv> <ne> [fmt]
//	<vertex 1 adjacency line>
//	...
//
// fmt is the usual 2-digit flag: 1 = edge weights present, 10 = vertex
// weights present, 11 = both (absent or 0 = neither). Adjacency lines
// list 1-based neighbour indices, preceded by the vertex weight when
// declared, with each neighbour followed by the edge weight when
// declared. Each undirected edge conventionally appears in both
// endpoints' lines; LoadGraph keeps the u < v occurrences, so
// single-sided listings still load. All counts are validated against the
// package decode caps before allocation; malformed input returns a typed
// error, never a panic.
func LoadGraph(r io.Reader) (*Hypergraph, error) {
	ls := newLineScanner(r)
	hdr, err := ls.next()
	if err != nil {
		return nil, err
	}
	if hdr == nil {
		return nil, ErrEmpty
	}
	if len(hdr) < 2 || len(hdr) > 3 {
		return nil, ls.errf("header wants 'nv ne [fmt]', got %d fields", len(hdr))
	}
	nv64, err := parsePos(ls, hdr[0], "vertex count", MaxVertices)
	if err != nil {
		return nil, err
	}
	ne64, err := parsePos(ls, hdr[1], "edge count", MaxPins/2)
	if err != nil {
		return nil, err
	}
	hasVW, hasEW := false, false
	if len(hdr) == 3 {
		switch hdr[2] {
		case "0", "00", "000":
		case "1", "01", "001":
			hasEW = true
		case "10", "010":
			hasVW = true
		case "11", "011":
			hasVW, hasEW = true, true
		default:
			return nil, ls.errf("unsupported fmt %q", hdr[2])
		}
	}
	nv := int(nv64)
	if nv == 0 {
		return nil, ErrEmpty
	}
	var vw []int64
	if hasVW {
		vw = make([]int64, nv)
	}
	edges := make([]Edge, 0, ne64)
	for v := 0; v < nv; v++ {
		fields, err := ls.next()
		if err != nil {
			return nil, err
		}
		if fields == nil {
			return nil, fmt.Errorf("%w: %d adjacency lines for %d vertices", ErrFormat, v, nv)
		}
		i := 0
		if hasVW {
			if len(fields) < 1 {
				return nil, ls.errf("vertex %d: missing weight", v+1)
			}
			w, err := parsePos(ls, fields[0], "vertex weight", MaxVertexWeight)
			if err != nil {
				return nil, err
			}
			if w == 0 {
				return nil, ls.errf("vertex %d: zero weight", v+1)
			}
			vw[v] = w
			i = 1
		}
		for i < len(fields) {
			u64, err := parsePos(ls, fields[i], "neighbour index", MaxVertices)
			if err != nil {
				return nil, err
			}
			if u64 < 1 || u64 > int64(nv) {
				return nil, ls.errf("vertex %d: neighbour %d out of range [1, %d]", v+1, u64, nv)
			}
			i++
			ew := int64(1)
			if hasEW {
				if i >= len(fields) {
					return nil, ls.errf("vertex %d: neighbour %d missing edge weight", v+1, u64)
				}
				ew, err = parsePos(ls, fields[i], "edge weight", MaxVertexWeight)
				if err != nil {
					return nil, err
				}
				if ew == 0 {
					return nil, ls.errf("vertex %d: zero edge weight", v+1)
				}
				i++
			}
			u := int32(u64 - 1)
			if u == int32(v) {
				return nil, ls.errf("vertex %d: self-loop", v+1)
			}
			if int32(v) < u {
				if len(edges) >= MaxPins/2 {
					return nil, fmt.Errorf("%w: more than %d edges", ErrTooLarge, MaxPins/2)
				}
				edges = append(edges, Edge{U: int32(v), V: u, Weight: ew})
			}
		}
	}
	if extra, err := ls.next(); err != nil {
		return nil, err
	} else if extra != nil {
		return nil, ls.errf("trailing content after %d adjacency lines", nv)
	}
	return FromEdges(nv, vw, edges)
}

// LoadHypergraph parses an hMetis-style plain-text hypergraph:
//
//	<nnets> <nv> [fmt]
//	<net 1 pin line>
//	...
//	[<nv vertex weight lines when declared>]
//
// fmt: 1 = net weights lead each pin line, 10 = vertex weight lines
// follow the nets, 11 = both. Pins are 1-based vertex indices. The same
// decode caps and typed-error policy as LoadGraph apply.
func LoadHypergraph(r io.Reader) (*Hypergraph, error) {
	ls := newLineScanner(r)
	hdr, err := ls.next()
	if err != nil {
		return nil, err
	}
	if hdr == nil {
		return nil, ErrEmpty
	}
	if len(hdr) < 2 || len(hdr) > 3 {
		return nil, ls.errf("header wants 'nnets nv [fmt]', got %d fields", len(hdr))
	}
	nn64, err := parsePos(ls, hdr[0], "net count", MaxPins/2)
	if err != nil {
		return nil, err
	}
	nv64, err := parsePos(ls, hdr[1], "vertex count", MaxVertices)
	if err != nil {
		return nil, err
	}
	hasNW, hasVW := false, false
	if len(hdr) == 3 {
		switch hdr[2] {
		case "0", "00":
		case "1", "01":
			hasNW = true
		case "10":
			hasVW = true
		case "11":
			hasNW, hasVW = true, true
		default:
			return nil, ls.errf("unsupported fmt %q", hdr[2])
		}
	}
	nn, nv := int(nn64), int(nv64)
	if nv == 0 {
		return nil, ErrEmpty
	}
	netPins := make([][]int32, 0, nn)
	var nw []int64
	if hasNW {
		nw = make([]int64, 0, nn)
	}
	totalPins := 0
	for n := 0; n < nn; n++ {
		fields, err := ls.next()
		if err != nil {
			return nil, err
		}
		if fields == nil {
			return nil, fmt.Errorf("%w: %d net lines for %d nets", ErrFormat, n, nn)
		}
		i := 0
		if hasNW {
			w, err := parsePos(ls, fields[0], "net weight", MaxVertexWeight)
			if err != nil {
				return nil, err
			}
			if w == 0 {
				return nil, ls.errf("net %d: zero weight", n+1)
			}
			nw = append(nw, w)
			i = 1
		}
		if len(fields)-i < 2 {
			return nil, ls.errf("net %d: fewer than two pins", n+1)
		}
		pins := make([]int32, 0, len(fields)-i)
		for ; i < len(fields); i++ {
			p64, err := parsePos(ls, fields[i], "pin index", MaxVertices)
			if err != nil {
				return nil, err
			}
			if p64 < 1 || p64 > int64(nv) {
				return nil, ls.errf("net %d: pin %d out of range [1, %d]", n+1, p64, nv)
			}
			pins = append(pins, int32(p64-1))
			totalPins++
			if totalPins > MaxPins {
				return nil, fmt.Errorf("%w: more than %d pins", ErrTooLarge, MaxPins)
			}
		}
		netPins = append(netPins, pins)
	}
	var vw []int64
	if hasVW {
		vw = make([]int64, nv)
		for v := 0; v < nv; v++ {
			fields, err := ls.next()
			if err != nil {
				return nil, err
			}
			if fields == nil {
				return nil, fmt.Errorf("%w: %d vertex weight lines for %d vertices", ErrFormat, v, nv)
			}
			if len(fields) != 1 {
				return nil, ls.errf("vertex weight line wants 1 field, got %d", len(fields))
			}
			w, err := parsePos(ls, fields[0], "vertex weight", MaxVertexWeight)
			if err != nil {
				return nil, err
			}
			if w == 0 {
				return nil, ls.errf("vertex %d: zero weight", v+1)
			}
			vw[v] = w
		}
	}
	if extra, err := ls.next(); err != nil {
		return nil, err
	} else if extra != nil {
		return nil, ls.errf("trailing content")
	}
	return FromNets(nv, vw, netPins, nw)
}
