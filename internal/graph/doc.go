// Package graph provides a real-instance bisector backend: a CSR
// vertex-weighted hypergraph with a PMondriaan-shaped multilevel
// bisector (heavy-connection-matching coarsening, greedy LPT initial
// bisection, boundary-FM refinement) exposed through bisect.Problem.
//
// Unlike the synthetic substrates in internal/bisect, the bisector
// quality α here is emergent: each bisection honours the balance
// contract that both sides weigh at most ⌊(1+ε)·W/2⌋, so every
// performed split realizes α̂ ≥ (1−ε)/2, and the actual per-split α̂ is
// reported through a bisect.AlphaRecorder for measured-bound (r_α̂)
// verification. See DESIGN.md §16 for the backend contract.
//
// Instances come from three sources: text loaders for Metis/Chaco
// graphs (LoadGraph) and hMetis hypergraphs (LoadHypergraph), both
// hardened with decode caps and typed errors; deterministic generators
// (GridGraph, RingGraph, RandomHypergraph); and direct construction
// (FromEdges, FromNets).
package graph
