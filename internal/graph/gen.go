package graph

import (
	"fmt"

	"bisectlb/internal/xrand"
)

// genWeights draws small seeded integer vertex weights in [1, spread].
// spread ≤ 1 yields unit weights.
func genWeights(n int, spread int64, seed uint64) []int64 {
	if spread <= 1 {
		return nil // FromNets defaults to unit weights
	}
	rng := xrand.New(xrand.Mix(seed, 0x57E16))
	vw := make([]int64, n)
	for i := range vw {
		vw[i] = 1 + int64(rng.Uint64()%uint64(spread))
	}
	return vw
}

// GridGraph builds a rows×cols 4-neighbour mesh — the FEM-style
// structured instance — with seeded vertex weights in [1, spread]
// (unit weights when spread ≤ 1). The mesh has excellent bisectors, so
// measured α̂ should sit near 1/2.
func GridGraph(rows, cols int, spread int64, seed uint64) (*Hypergraph, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("%w: grid %dx%d", ErrFormat, rows, cols)
	}
	if rows > MaxVertices/cols {
		return nil, fmt.Errorf("%w: grid %dx%d exceeds %d vertices", ErrTooLarge, rows, cols, MaxVertices)
	}
	nv := rows * cols
	edges := make([]Edge, 0, 2*nv)
	at := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{U: at(r, c), V: at(r, c+1), Weight: 1})
			}
			if r+1 < rows {
				edges = append(edges, Edge{U: at(r, c), V: at(r+1, c), Weight: 1})
			}
		}
	}
	return FromEdges(nv, genWeights(nv, spread, seed), edges)
}

// RingGraph builds a cycle of nv vertices plus `chords` seeded random
// chords — a small-world-ish instance whose bisectors are good but not
// geometric. Vertex weights are seeded in [1, spread].
func RingGraph(nv int, chords int, spread int64, seed uint64) (*Hypergraph, error) {
	if nv < 3 {
		return nil, fmt.Errorf("%w: ring wants ≥ 3 vertices, got %d", ErrFormat, nv)
	}
	if nv > MaxVertices || chords < 0 || chords > MaxPins/2-nv {
		return nil, fmt.Errorf("%w: ring %d vertices, %d chords", ErrTooLarge, nv, chords)
	}
	edges := make([]Edge, 0, nv+chords)
	for v := 0; v < nv; v++ {
		edges = append(edges, Edge{U: int32(v), V: int32((v + 1) % nv), Weight: 1})
	}
	rng := xrand.New(xrand.Mix(seed, 0x21B6))
	for len(edges) < nv+chords {
		u := int32(rng.Intn(nv))
		v := int32(rng.Intn(nv))
		if u == v {
			continue
		}
		edges = append(edges, Edge{U: u, V: v, Weight: 1})
	}
	return FromEdges(nv, genWeights(nv, spread, seed), edges)
}

// RandomHypergraph builds nv vertices and nets seeded nets of 2..maxPin
// distinct pins each, with vertex weights in [1, spread] — the sparse
// unstructured instance class.
func RandomHypergraph(nv, nets, maxPin int, spread int64, seed uint64) (*Hypergraph, error) {
	if nv < 2 || nets < 1 || maxPin < 2 {
		return nil, fmt.Errorf("%w: hypergraph nv=%d nets=%d maxPin=%d", ErrFormat, nv, nets, maxPin)
	}
	if nv > MaxVertices || nets > MaxPins/2 || maxPin > nv {
		return nil, fmt.Errorf("%w: hypergraph nv=%d nets=%d maxPin=%d", ErrTooLarge, nv, nets, maxPin)
	}
	rng := xrand.New(xrand.Mix(seed, 0x8F2D))
	netPins := make([][]int32, 0, nets)
	seen := make([]int, nv)
	for n := 0; n < nets; n++ {
		k := 2 + rng.Intn(maxPin-1)
		pins := make([]int32, 0, k)
		for len(pins) < k {
			v := rng.Intn(nv)
			if seen[v] == n+1 {
				continue
			}
			seen[v] = n + 1
			pins = append(pins, int32(v))
		}
		netPins = append(netPins, pins)
	}
	return FromNets(nv, genWeights(nv, spread, seed), netPins, nil)
}
