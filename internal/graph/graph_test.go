package graph

import (
	"errors"
	"strings"
	"testing"
)

func TestFromNetsValidation(t *testing.T) {
	if _, err := FromNets(0, nil, nil, nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("nv=0: err = %v, want ErrEmpty", err)
	}
	if _, err := FromNets(MaxVertices+1, nil, nil, nil); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("over cap: err = %v, want ErrTooLarge", err)
	}
	if _, err := FromNets(2, []int64{1}, nil, nil); !errors.Is(err, ErrFormat) {
		t.Fatalf("weight len mismatch: err = %v, want ErrFormat", err)
	}
	if _, err := FromNets(2, []int64{1, 0}, nil, nil); !errors.Is(err, ErrFormat) {
		t.Fatalf("zero weight: err = %v, want ErrFormat", err)
	}
	if _, err := FromNets(3, nil, [][]int32{{0, 1, 1}}, nil); !errors.Is(err, ErrFormat) {
		t.Fatalf("duplicate pin: err = %v, want ErrFormat", err)
	}
	if _, err := FromNets(3, nil, [][]int32{{0, 3}}, nil); !errors.Is(err, ErrFormat) {
		t.Fatalf("out-of-range pin: err = %v, want ErrFormat", err)
	}
	h, err := FromNets(3, []int64{2, 3, 4}, [][]int32{{0, 1}, {0, 1, 2}}, []int64{5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 3 || h.NumNets() != 2 || h.NumPins() != 5 {
		t.Fatalf("shape = %d/%d/%d", h.NumVertices(), h.NumNets(), h.NumPins())
	}
	if h.TotalWeight() != 9 || h.MaxVertexWeight() != 4 || h.VertexWeight(1) != 3 {
		t.Fatalf("weights = %d/%d/%d", h.TotalWeight(), h.MaxVertexWeight(), h.VertexWeight(1))
	}
}

func TestFromEdges(t *testing.T) {
	if _, err := FromEdges(2, nil, []Edge{{U: 1, V: 1}}); !errors.Is(err, ErrFormat) {
		t.Fatalf("self-loop: err = %v, want ErrFormat", err)
	}
	h, err := FromEdges(3, nil, []Edge{{U: 0, V: 1}, {U: 1, V: 2, Weight: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumNets() != 2 || h.nwgt[0] != 1 || h.nwgt[1] != 4 {
		t.Fatalf("nets = %d, weights = %v", h.NumNets(), h.nwgt)
	}
}

func TestInduceDropsSmallNets(t *testing.T) {
	h, err := FromNets(4, nil, [][]int32{{0, 1}, {1, 2, 3}, {2, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	side := []uint8{0, 0, 1, 1}
	left := h.induce(side, 0)
	right := h.induce(side, 1)
	if left.NumVertices() != 2 || left.NumNets() != 1 {
		t.Fatalf("left = %d vertices, %d nets", left.NumVertices(), left.NumNets())
	}
	// net {1,2,3} loses vertex 1 on the right but keeps {2,3} — two pins.
	if right.NumVertices() != 2 || right.NumNets() != 2 {
		t.Fatalf("right = %d vertices, %d nets", right.NumVertices(), right.NumNets())
	}
	if left.TotalWeight()+right.TotalWeight() != h.TotalWeight() {
		t.Fatal("induce lost weight")
	}
}

func TestCutWeight(t *testing.T) {
	h, err := FromNets(4, nil, [][]int32{{0, 1}, {1, 2}, {2, 3}}, []int64{10, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := CutWeight(h, []uint8{0, 0, 1, 1}); got != 3 {
		t.Fatalf("cut = %d, want 3", got)
	}
	if got := CutWeight(h, []uint8{0, 1, 0, 1}); got != 18 {
		t.Fatalf("cut = %d, want 18", got)
	}
}

func TestLoadGraphRoundTrip(t *testing.T) {
	const src = `% a 2x3 grid with vertex and edge weights
6 7 11
2 2 1  4 2
1 1 1  3 3  5 1
4 2 3  6 4
3 1 2  5 6
2 2 1  4 6  6 1
5 3 4  5 1
`
	h, err := LoadGraph(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 6 || h.NumNets() != 7 {
		t.Fatalf("shape = %d vertices, %d nets", h.NumVertices(), h.NumNets())
	}
	if h.TotalWeight() != 2+1+4+3+2+5 {
		t.Fatalf("total = %d", h.TotalWeight())
	}
}

func TestLoadGraphUnweighted(t *testing.T) {
	const src = "3 2\n2\n1 3\n2\n"
	h, err := LoadGraph(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 3 || h.NumNets() != 2 || h.TotalWeight() != 3 {
		t.Fatalf("shape = %d/%d/%d", h.NumVertices(), h.NumNets(), h.TotalWeight())
	}
}

func TestLoadGraphErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want error
	}{
		{"empty", "", ErrEmpty},
		{"comment only", "% nothing\n", ErrEmpty},
		{"zero vertices", "0 0\n", ErrEmpty},
		{"bad header", "a b\n1\n", ErrFormat},
		{"header fields", "1 2 3 4\n", ErrFormat},
		{"bad fmt", "2 1 99\n2\n1\n", ErrFormat},
		{"over vertex cap", "99999999 0\n", ErrTooLarge},
		{"neighbour range", "2 1\n3\n1\n", ErrFormat},
		{"self loop", "2 1\n1\n2\n", ErrFormat},
		{"missing lines", "3 1\n2\n", ErrFormat},
		{"trailing", "2 1\n2\n1\n1 2\n", ErrFormat},
		{"zero vweight", "2 1 10\n0 2\n1 1\n", ErrFormat},
		{"missing eweight", "2 1 1\n2\n1 5\n", ErrFormat},
		{"negative", "2 1\n-2\n1\n", ErrFormat},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := LoadGraph(strings.NewReader(c.src)); !errors.Is(err, c.want) {
				t.Fatalf("err = %v, want %v", err, c.want)
			}
		})
	}
}

func TestLoadHypergraph(t *testing.T) {
	const src = `% 3 nets over 4 vertices, net + vertex weights
3 4 11
2 1 2
7 2 3 4
1 1 4
3
1
2
5
`
	h, err := LoadHypergraph(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 4 || h.NumNets() != 3 || h.NumPins() != 7 {
		t.Fatalf("shape = %d/%d/%d", h.NumVertices(), h.NumNets(), h.NumPins())
	}
	if h.TotalWeight() != 11 || h.nwgt[1] != 7 {
		t.Fatalf("weights = %d / %v", h.TotalWeight(), h.nwgt)
	}
}

func TestLoadHypergraphErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want error
	}{
		{"empty", "", ErrEmpty},
		{"zero vertices", "1 0\n1 2\n", ErrEmpty},
		{"bad fmt", "1 2 7\n1 2\n", ErrFormat},
		{"one pin", "1 2\n1\n", ErrFormat},
		{"pin range", "1 2\n1 5\n", ErrFormat},
		{"duplicate pin", "1 3\n2 2\n", ErrFormat},
		{"missing nets", "2 3\n1 2\n", ErrFormat},
		{"missing vweights", "1 2 10\n1 2\n5\n", ErrFormat},
		{"vweight fields", "1 2 10\n1 2\n5 5\n1\n", ErrFormat},
		{"trailing", "1 2\n1 2\nextra\n", ErrFormat},
		{"over net cap", "99999999 2\n", ErrTooLarge},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := LoadHypergraph(strings.NewReader(c.src)); !errors.Is(err, c.want) {
				t.Fatalf("err = %v, want %v", err, c.want)
			}
		})
	}
}

func TestGenerators(t *testing.T) {
	g, err := GridGraph(4, 5, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 20 || g.NumNets() != 4*4+3*5 {
		t.Fatalf("grid shape = %d/%d", g.NumVertices(), g.NumNets())
	}
	r, err := RingGraph(10, 4, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumVertices() != 10 || r.NumNets() != 14 || r.TotalWeight() != 10 {
		t.Fatalf("ring shape = %d/%d/%d", r.NumVertices(), r.NumNets(), r.TotalWeight())
	}
	hy, err := RandomHypergraph(30, 20, 5, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if hy.NumVertices() != 30 || hy.NumNets() != 20 {
		t.Fatalf("hypergraph shape = %d/%d", hy.NumVertices(), hy.NumNets())
	}
	if _, err := GridGraph(0, 3, 1, 1); !errors.Is(err, ErrFormat) {
		t.Fatalf("bad grid: %v", err)
	}
	if _, err := RingGraph(2, 0, 1, 1); !errors.Is(err, ErrFormat) {
		t.Fatalf("bad ring: %v", err)
	}
	if _, err := RandomHypergraph(1, 1, 2, 1, 1); !errors.Is(err, ErrFormat) {
		t.Fatalf("bad hypergraph: %v", err)
	}
}
