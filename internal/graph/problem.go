package graph

import (
	"fmt"
	"math"
	"sync"

	"bisectlb/internal/bisect"
	"bisectlb/internal/xrand"
)

// DefaultEps is the balance slack used when Config.Eps is zero: each
// bisection side must weigh at most (1+ε)·W/2, the PMondriaan-style
// balance contract, so the implied bisector quality is α = (1−ε)/2.
const DefaultEps = 0.1

// Config parameterises a root graph Problem.
type Config struct {
	// Eps is the balance slack ε ∈ (0, 1); 0 selects DefaultEps. Each
	// side of every bisection weighs at most hiCap = ⌊(1+ε)·W/2⌋.
	Eps float64
	// Seed is the root problem ID and the origin of every derived
	// bisection RNG stream; 0 selects 1. Distinct seeds give distinct
	// deterministic bisection trees.
	Seed uint64
	// Recorder, when non-nil, receives every performed bisection so the
	// caller can evaluate measured-α̂ guarantee bounds.
	Recorder *bisect.AlphaRecorder
}

// Problem adapts a Hypergraph to bisect.Problem: Bisect runs the
// multilevel bisector once and materialises the two induced
// sub-hypergraphs as child problems. Bisection is deterministic — the
// same problem always yields the same children, weights, and IDs — and
// the split is computed lazily once, shared by CanBisect and Bisect.
type Problem struct {
	h     *Hypergraph
	id    uint64
	depth int
	eps   float64
	rec   *bisect.AlphaRecorder

	once  sync.Once
	sides []uint8
	ok    bool
}

// New wraps h as a root Problem. The hypergraph must be non-empty;
// Config zero values select DefaultEps and seed 1.
func New(h *Hypergraph, cfg Config) (*Problem, error) {
	if h == nil || h.NumVertices() == 0 {
		return nil, ErrEmpty
	}
	eps := cfg.Eps
	if eps == 0 {
		eps = DefaultEps
	}
	if eps < 0 || eps >= 1 || math.IsNaN(eps) {
		return nil, fmt.Errorf("%w: eps %v outside (0, 1)", ErrFormat, cfg.Eps)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Problem{h: h, id: seed, eps: eps, rec: cfg.Recorder}, nil
}

// Hypergraph returns the problem's underlying hypergraph.
func (p *Problem) Hypergraph() *Hypergraph { return p.h }

// ID returns the problem's unique identifier within its tree.
func (p *Problem) ID() uint64 { return p.id }

// Weight returns the total vertex weight. Construction caps keep totals
// below 2^52, so the float64 value is exact and children sum exactly to
// their parent.
func (p *Problem) Weight() float64 { return float64(p.h.total) }

// hiCap returns ⌊(1+ε)·W/2⌋, the heavier side's weight cap.
func (p *Problem) hiCap() int64 {
	return int64(math.Floor((1 + p.eps) * float64(p.h.total) / 2))
}

// AlphaFloor returns the smallest α̂ any in-band bisection of this
// problem can produce: (W − hiCap)/W ≥ (1−ε)/2. Every bisection the
// backend performs records at least this value.
func (p *Problem) AlphaFloor() float64 {
	return float64(p.h.total-p.hiCap()) / float64(p.h.total)
}

// Alpha returns the class bisector quality (1−ε)/2 implied by the
// balance contract; AlphaFloor is at least this for every instance.
func (p *Problem) Alpha() float64 { return (1 - p.eps) / 2 }

// split computes the bisection lazily, once. ok reports whether the
// bisector produced an in-band split — the authoritative feasibility
// answer shared by CanBisect and Bisect.
func (p *Problem) split() ([]uint8, bool) {
	p.once.Do(func() {
		if p.h.NumVertices() < 2 {
			return
		}
		hi := p.hiCap()
		lo := p.h.total - hi
		sides := bisectSides(p.h, hi, xrand.Mix(p.id, 0xB15EC7))
		var w0 int64
		for v, s := range sides {
			if s == 0 {
				w0 += p.h.vwgt[v]
			}
		}
		if w0 < lo || w0 > hi {
			return
		}
		p.sides, p.ok = sides, true
	})
	return p.sides, p.ok
}

// CanBisect reports whether Bisect may be called: at least two vertices
// and the multilevel bisector actually achieves the (1+ε)·W/2 balance
// band on this instance. Indivisible problems (single vertex, or one
// vertex so heavy no in-band split exists) become final parts.
func (p *Problem) CanBisect() bool {
	_, ok := p.split()
	return ok
}

// Bisect splits the problem into two child problems with the heavier
// child first (ties keep side 0 first). Child IDs derive from the
// parent's via the same mixing scheme as the synthetic substrates, so
// HF and PHF see identical trees (Theorem 3 parity). Each call records
// the realized α̂ with the configured recorder.
func (p *Problem) Bisect() (bisect.Problem, bisect.Problem) {
	sides, ok := p.split()
	if !ok {
		panic("graph: Bisect called on indivisible problem")
	}
	h0 := p.h.induce(sides, 0)
	h1 := p.h.induce(sides, 1)
	heavy, light := h0, h1
	if h1.total > h0.total {
		heavy, light = h1, h0
	}
	a := &Problem{h: heavy, id: xrand.Mix(p.id, 1), depth: p.depth + 1, eps: p.eps, rec: p.rec}
	b := &Problem{h: light, id: xrand.Mix(p.id, 2), depth: p.depth + 1, eps: p.eps, rec: p.rec}
	p.rec.Record(p.depth, float64(p.h.total), float64(heavy.total), float64(light.total))
	return a, b
}
