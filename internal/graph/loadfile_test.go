package graph

import (
	"os"
	"path/filepath"
	"testing"
)

func loadTestdata(t *testing.T, name string) *Hypergraph {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var h *Hypergraph
	if filepath.Ext(name) == ".hgr" {
		h, err = LoadHypergraph(f)
	} else {
		h, err = LoadGraph(f)
	}
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return h
}

func TestTestdataInstances(t *testing.T) {
	g := loadTestdata(t, "grid6x6.graph")
	if g.NumVertices() != 36 || g.NumNets() != 60 {
		t.Fatalf("grid6x6 shape = %d/%d", g.NumVertices(), g.NumNets())
	}
	hy := loadTestdata(t, "tri.hgr")
	if hy.NumVertices() != 8 || hy.NumNets() != 5 || hy.TotalWeight() != 20 {
		t.Fatalf("tri.hgr shape = %d/%d/%d", hy.NumVertices(), hy.NumNets(), hy.TotalWeight())
	}
	for _, h := range []*Hypergraph{g, hy} {
		p := mustProblem(t, h, Config{Seed: 7})
		if leaves := exhaust(t, p, map[uint64]bool{}); leaves < 2 {
			t.Fatalf("checked-in instance did not split (%d leaves)", leaves)
		}
	}
}
