package graph

import (
	"errors"
	"fmt"
)

// Decode and construction caps. Loaders and builders reject inputs above
// these bounds with ErrTooLarge before allocating, so a malformed or
// adversarial header can never OOM the process (the netcoll framing
// discipline applied to text loaders).
const (
	// MaxVertices bounds the vertex count of any constructed hypergraph.
	MaxVertices = 1 << 20
	// MaxPins bounds the total pin (vertex-in-net incidence) count.
	MaxPins = 1 << 22
	// MaxVertexWeight bounds a single vertex weight; the sum of MaxVertices
	// weights then still fits int64 with headroom.
	MaxVertexWeight = 1 << 40
)

// Typed construction/loader errors.
var (
	// ErrFormat reports malformed loader input (wrong token count, bad
	// number, out-of-range index…). Loaders never panic on bad input.
	ErrFormat = errors.New("graph: malformed input")
	// ErrTooLarge reports input exceeding the decode caps.
	ErrTooLarge = errors.New("graph: input exceeds size caps")
	// ErrEmpty reports a structurally valid but vertex-less input.
	ErrEmpty = errors.New("graph: no vertices")
)

// Hypergraph is an immutable vertex-weighted hypergraph in compressed
// sparse row form, the substrate of the multilevel bisector. A plain
// graph is the special case where every net has exactly two pins; the
// builders below produce both. Immutability is what makes Problem
// bisection deterministic and side-effect-free: children materialise
// fresh sub-hypergraphs and never touch the parent.
type Hypergraph struct {
	vwgt []int64 // vertex weights, len = NumVertices
	nwgt []int64 // net weights, len = NumNets

	// vertex → incident nets (CSR)
	xpins []int32
	pins  []int32
	// net → member vertices (CSR)
	xnets []int32
	nets  []int32

	total int64 // Σ vwgt
	wmax  int64 // max vwgt
}

// NumVertices returns the vertex count.
func (h *Hypergraph) NumVertices() int { return len(h.vwgt) }

// NumNets returns the net count.
func (h *Hypergraph) NumNets() int { return len(h.nwgt) }

// NumPins returns the total pin count (Σ net sizes).
func (h *Hypergraph) NumPins() int { return len(h.nets) }

// TotalWeight returns the vertex weight sum.
func (h *Hypergraph) TotalWeight() int64 { return h.total }

// MaxVertexWeight returns the largest single vertex weight.
func (h *Hypergraph) MaxVertexWeight() int64 { return h.wmax }

// VertexWeight returns the weight of vertex v.
func (h *Hypergraph) VertexWeight(v int) int64 { return h.vwgt[v] }

// FromNets builds a hypergraph from explicit net (hyperedge) pin lists.
// Vertex weights default to 1 when vw is nil; net weights default to 1
// when nw is nil. Nets keep their given order; pins must be in-range
// vertex indices. Duplicate pins within a net are rejected — they would
// double-count cut contributions.
func FromNets(nv int, vw []int64, netPins [][]int32, nw []int64) (*Hypergraph, error) {
	if nv <= 0 {
		return nil, ErrEmpty
	}
	if nv > MaxVertices {
		return nil, fmt.Errorf("%w: %d vertices (cap %d)", ErrTooLarge, nv, MaxVertices)
	}
	if vw != nil && len(vw) != nv {
		return nil, fmt.Errorf("%w: %d vertex weights for %d vertices", ErrFormat, len(vw), nv)
	}
	if nw != nil && len(nw) != len(netPins) {
		return nil, fmt.Errorf("%w: %d net weights for %d nets", ErrFormat, len(nw), len(netPins))
	}
	totalPins := 0
	for _, p := range netPins {
		totalPins += len(p)
	}
	if totalPins > MaxPins {
		return nil, fmt.Errorf("%w: %d pins (cap %d)", ErrTooLarge, totalPins, MaxPins)
	}
	h := &Hypergraph{
		vwgt:  make([]int64, nv),
		nwgt:  make([]int64, len(netPins)),
		xpins: make([]int32, nv+1),
		pins:  make([]int32, 0, totalPins),
		xnets: make([]int32, len(netPins)+1),
		nets:  make([]int32, 0, totalPins),
	}
	for v := range h.vwgt {
		w := int64(1)
		if vw != nil {
			w = vw[v]
		}
		if w < 1 || w > MaxVertexWeight {
			return nil, fmt.Errorf("%w: vertex %d weight %d outside [1, %d]", ErrFormat, v, w, int64(MaxVertexWeight))
		}
		h.vwgt[v] = w
		h.total += w
		if w > h.wmax {
			h.wmax = w
		}
	}
	deg := make([]int32, nv)
	seen := make([]int32, nv) // seen[v] = net index + 1 that last used v
	for n, p := range netPins {
		w := int64(1)
		if nw != nil {
			w = nw[n]
		}
		if w < 1 || w > MaxVertexWeight {
			return nil, fmt.Errorf("%w: net %d weight %d outside [1, %d]", ErrFormat, n, w, int64(MaxVertexWeight))
		}
		h.nwgt[n] = w
		for _, v := range p {
			if v < 0 || int(v) >= nv {
				return nil, fmt.Errorf("%w: net %d pin %d out of range [0, %d)", ErrFormat, n, v, nv)
			}
			if seen[v] == int32(n)+1 {
				return nil, fmt.Errorf("%w: net %d lists vertex %d twice", ErrFormat, n, v)
			}
			seen[v] = int32(n) + 1
			deg[v]++
			h.nets = append(h.nets, v)
		}
		h.xnets[n+1] = int32(len(h.nets))
	}
	// Vertex → nets CSR from degree counts.
	for v := 0; v < nv; v++ {
		h.xpins[v+1] = h.xpins[v] + deg[v]
	}
	h.pins = h.pins[:totalPins]
	fill := make([]int32, nv)
	copy(fill, h.xpins[:nv])
	for n := 0; n < len(netPins); n++ {
		for _, v := range h.nets[h.xnets[n]:h.xnets[n+1]] {
			h.pins[fill[v]] = int32(n)
			fill[v]++
		}
	}
	return h, nil
}

// Edge is one weighted undirected edge for FromEdges.
type Edge struct {
	U, V   int32
	Weight int64
}

// FromEdges builds a plain graph (every edge a 2-pin net) from an edge
// list. Self-loops are rejected; parallel edges are allowed and behave
// as parallel nets (their cut weights add).
func FromEdges(nv int, vw []int64, edges []Edge) (*Hypergraph, error) {
	netPins := make([][]int32, len(edges))
	nw := make([]int64, len(edges))
	for i, e := range edges {
		if e.U == e.V {
			return nil, fmt.Errorf("%w: self-loop at vertex %d", ErrFormat, e.U)
		}
		netPins[i] = []int32{e.U, e.V}
		w := e.Weight
		if w == 0 {
			w = 1
		}
		nw[i] = w
	}
	return FromNets(nv, vw, netPins, nw)
}

// induce materialises the sub-hypergraph on the vertices with side[v] == s,
// keeping original relative vertex order. Nets are restricted to their
// surviving pins; nets left with fewer than two pins are dropped — they
// can never be cut again and carry no vertex weight.
func (h *Hypergraph) induce(side []uint8, s uint8) *Hypergraph {
	nv := 0
	remap := make([]int32, len(h.vwgt))
	for v := range h.vwgt {
		if side[v] == s {
			remap[v] = int32(nv)
			nv++
		} else {
			remap[v] = -1
		}
	}
	sub := &Hypergraph{
		vwgt:  make([]int64, 0, nv),
		xpins: make([]int32, nv+1),
	}
	for v, w := range h.vwgt {
		if side[v] == s {
			sub.vwgt = append(sub.vwgt, w)
			sub.total += w
			if w > sub.wmax {
				sub.wmax = w
			}
		}
	}
	deg := make([]int32, nv)
	sub.xnets = append(sub.xnets, 0)
	for n := 0; n < h.NumNets(); n++ {
		cnt := 0
		for _, v := range h.nets[h.xnets[n]:h.xnets[n+1]] {
			if side[v] == s {
				cnt++
			}
		}
		if cnt < 2 {
			continue
		}
		for _, v := range h.nets[h.xnets[n]:h.xnets[n+1]] {
			if side[v] == s {
				sub.nets = append(sub.nets, remap[v])
				deg[remap[v]]++
			}
		}
		sub.nwgt = append(sub.nwgt, h.nwgt[n])
		sub.xnets = append(sub.xnets, int32(len(sub.nets)))
	}
	for v := 0; v < nv; v++ {
		sub.xpins[v+1] = sub.xpins[v] + deg[v]
	}
	sub.pins = make([]int32, len(sub.nets))
	fill := make([]int32, nv)
	copy(fill, sub.xpins[:nv])
	for n := 0; n < sub.NumNets(); n++ {
		for _, v := range sub.nets[sub.xnets[n]:sub.xnets[n+1]] {
			sub.pins[fill[v]] = int32(n)
			fill[v]++
		}
	}
	return sub
}
