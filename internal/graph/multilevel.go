package graph

import (
	"sort"

	"bisectlb/internal/xrand"
)

// Multilevel tuning constants. The values follow the usual
// coarsen → initial-partition → refine shape (PMondriaan, Metis): stop
// coarsening once the graph is small enough for a direct greedy
// bisection, give up when matching stalls, and run a bounded number of
// refinement passes per level so the bisector's cost stays linear-ish.
const (
	// coarseStop is the vertex count below which coarsening stops and the
	// initial bisection runs directly.
	coarseStop = 24
	// minShrink is the minimum relative vertex-count reduction a
	// coarsening round must achieve to continue (stall guard).
	minShrink = 0.05
	// fmPasses bounds the refinement passes per uncoarsening level.
	fmPasses = 2
)

// bisectSides computes a deterministic two-way partition of h honoring
// the balance band [total−hiCap, hiCap] on both side weights while
// greedily minimising the cut net weight: heavy-connection matching
// coarsens the hypergraph, a weight-sorted greedy (LPT) bisection seeds
// the coarsest level, and boundary FM refinement improves the cut at
// every uncoarsening step without ever leaving the band. The returned
// slice maps each vertex to side 0 or 1. The same (h, hiCap, seed)
// always yields the same sides.
func bisectSides(h *Hypergraph, hiCap int64, seed uint64) []uint8 {
	// mergeCap bounds coarse vertex weights so the LPT bound
	// floor(W/2) + wmax_coarse stays ≤ hiCap whenever the fine graph was
	// feasible; never below the fine wmax, which already exists anyway.
	mergeCap := hiCap - h.total/2
	if mergeCap < h.wmax {
		mergeCap = h.wmax
	}

	type level struct {
		h    *Hypergraph
		cmap []int32 // fine vertex -> coarse vertex of the NEXT level
	}
	levels := []level{{h: h}}
	cur := h
	rng := xrand.New(xrand.Mix(seed, 0xC0A53))
	for cur.NumVertices() > coarseStop {
		cmap, cnv := heavyConnectionMatch(cur, mergeCap, rng)
		if cnv >= cur.NumVertices() || float64(cur.NumVertices()-cnv) < minShrink*float64(cur.NumVertices()) {
			break
		}
		coarse := contract(cur, cmap, cnv)
		levels[len(levels)-1].cmap = cmap
		levels = append(levels, level{h: coarse})
		cur = coarse
	}

	side := initialLPT(cur, hiCap)
	refine(cur, side, hiCap)
	for i := len(levels) - 2; i >= 0; i-- {
		fine := levels[i]
		fineSide := make([]uint8, fine.h.NumVertices())
		for v := range fineSide {
			fineSide[v] = side[fine.cmap[v]]
		}
		side = fineSide
		refine(fine.h, side, hiCap)
	}
	return side
}

// heavyConnectionMatch greedily matches each vertex with its most
// heavily connected unmatched neighbour (connection weight = Σ weights
// of shared nets), subject to the combined weight staying ≤ mergeCap.
// Vertices are visited in a seeded random order — the standard trick to
// decorrelate matchings across bisection levels — drawn from rng, which
// the caller seeds deterministically. Returns the fine→coarse map and
// the coarse vertex count; coarse indices are assigned in fine-index
// order of each group's first member, keeping contraction deterministic.
func heavyConnectionMatch(h *Hypergraph, mergeCap int64, rng *xrand.Source) ([]int32, int) {
	nv := h.NumVertices()
	order := make([]int32, nv)
	for i := range order {
		order[i] = int32(i)
	}
	// Fisher–Yates with the deterministic source.
	for i := nv - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	mate := make([]int32, nv)
	for i := range mate {
		mate[i] = -1
	}
	conn := make([]int64, nv)
	touched := make([]int32, 0, 32)
	for _, v := range order {
		if mate[v] != -1 {
			continue
		}
		// Accumulate connection weight to each neighbour via shared nets.
		touched = touched[:0]
		for _, n := range h.pins[h.xpins[v]:h.xpins[v+1]] {
			for _, u := range h.nets[h.xnets[n]:h.xnets[n+1]] {
				if u == v {
					continue
				}
				if conn[u] == 0 {
					touched = append(touched, u)
				}
				conn[u] += h.nwgt[n]
			}
		}
		best := int32(-1)
		var bestConn int64
		for _, u := range touched {
			if mate[u] == -1 && h.vwgt[v]+h.vwgt[u] <= mergeCap {
				if conn[u] > bestConn || (conn[u] == bestConn && (best == -1 || u < best)) {
					best, bestConn = u, conn[u]
				}
			}
			conn[u] = 0
		}
		if best != -1 {
			mate[v], mate[best] = best, v
		}
	}
	// Assign coarse indices by the smallest fine index of each pair.
	cmap := make([]int32, nv)
	for i := range cmap {
		cmap[i] = -1
	}
	cnv := 0
	for v := 0; v < nv; v++ {
		if cmap[v] != -1 {
			continue
		}
		cmap[v] = int32(cnv)
		if m := mate[v]; m != -1 {
			cmap[m] = int32(cnv)
		}
		cnv++
	}
	return cmap, cnv
}

// contract builds the coarse hypergraph: vertex weights sum over groups,
// net pins map through cmap with duplicates removed, and nets left with
// fewer than two distinct coarse pins vanish (they can never be cut).
func contract(h *Hypergraph, cmap []int32, cnv int) *Hypergraph {
	vw := make([]int64, cnv)
	for v, c := range cmap {
		vw[c] += h.vwgt[v]
	}
	var netPins [][]int32
	var nw []int64
	seen := make([]int32, cnv)
	for i := range seen {
		seen[i] = -1
	}
	for n := 0; n < h.NumNets(); n++ {
		var pins []int32
		for _, v := range h.nets[h.xnets[n]:h.xnets[n+1]] {
			c := cmap[v]
			if seen[c] != int32(n) {
				seen[c] = int32(n)
				pins = append(pins, c)
			}
		}
		if len(pins) >= 2 {
			netPins = append(netPins, pins)
			nw = append(nw, h.nwgt[n])
		}
	}
	coarse, err := FromNets(cnv, vw, netPins, nw)
	if err != nil {
		// All inputs come from a validated parent; a failure here is a
		// programmer error, not bad input.
		panic("graph: contract produced invalid hypergraph: " + err.Error())
	}
	return coarse
}

// initialLPT seeds the coarsest bisection: vertices sorted by weight
// descending (index ascending on ties) are assigned greedily to the
// lighter side. For two bins this keeps the heavier side at most
// floor(W/2) + wmax_coarse, which the coarsening mergeCap ties back to
// hiCap whenever the fine problem was feasible.
func initialLPT(h *Hypergraph, hiCap int64) []uint8 {
	nv := h.NumVertices()
	order := make([]int32, nv)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if h.vwgt[a] != h.vwgt[b] {
			return h.vwgt[a] > h.vwgt[b]
		}
		return a < b
	})
	side := make([]uint8, nv)
	var w0, w1 int64
	for _, v := range order {
		if w1 < w0 {
			side[v] = 1
			w1 += h.vwgt[v]
		} else {
			side[v] = 0
			w0 += h.vwgt[v]
		}
	}
	// Defensive repair: if the greedy seed somehow exceeds the cap (only
	// possible when the caller admitted an infeasible instance), shift the
	// lightest vertices of the heavy side over until within band or stuck.
	repair(h, side, hiCap)
	return side
}

// repair moves lightest-first vertices off an over-cap side. It is a
// no-op for feasible instances; Problem.CanBisect re-checks the band
// after bisection, so a stuck repair surfaces as an indivisible leaf,
// never as a silent contract breach.
func repair(h *Hypergraph, side []uint8, hiCap int64) {
	var w [2]int64
	for v, s := range side {
		w[s] += h.vwgt[v]
	}
	for from := 0; from < 2; from++ {
		if w[from] <= hiCap {
			continue
		}
		order := make([]int32, 0, len(side))
		for v := range side {
			if side[v] == uint8(from) {
				order = append(order, int32(v))
			}
		}
		sort.Slice(order, func(i, j int) bool {
			a, b := order[i], order[j]
			if h.vwgt[a] != h.vwgt[b] {
				return h.vwgt[a] < h.vwgt[b]
			}
			return a < b
		})
		to := 1 - from
		for _, v := range order {
			if w[from] <= hiCap {
				break
			}
			if w[to]+h.vwgt[v] > hiCap {
				continue
			}
			side[v] = uint8(to)
			w[from] -= h.vwgt[v]
			w[to] += h.vwgt[v]
		}
	}
}

// refine runs bounded greedy boundary-FM passes: repeatedly move the
// boundary vertex with the best positive cut gain whose move keeps both
// sides inside the band, locking each moved vertex for the rest of the
// pass. Only strictly improving moves are taken, so the cut decreases
// monotonically and the loop terminates.
func refine(h *Hypergraph, side []uint8, hiCap int64) {
	nv := h.NumVertices()
	nn := h.NumNets()
	if nv == 0 || nn == 0 {
		return
	}
	lo := h.total - hiCap
	cnt := make([][2]int32, nn)
	var w [2]int64
	recount := func() {
		for n := range cnt {
			cnt[n] = [2]int32{}
		}
		w = [2]int64{}
		for v := 0; v < nv; v++ {
			w[side[v]] += h.vwgt[v]
		}
		for n := 0; n < nn; n++ {
			for _, v := range h.nets[h.xnets[n]:h.xnets[n+1]] {
				cnt[n][side[v]]++
			}
		}
	}
	gain := func(v int32) int64 {
		s := side[v]
		var g int64
		for _, n := range h.pins[h.xpins[v]:h.xpins[v+1]] {
			if cnt[n][s] == 1 {
				g += h.nwgt[n] // net leaves the cut
			}
			if cnt[n][1-s] == 0 {
				g -= h.nwgt[n] // net enters the cut
			}
		}
		return g
	}
	locked := make([]bool, nv)
	for pass := 0; pass < fmPasses; pass++ {
		recount()
		for i := range locked {
			locked[i] = false
		}
		improved := false
		for moves := 0; moves < nv; moves++ {
			best := int32(-1)
			var bestGain int64
			for n := 0; n < nn; n++ {
				if cnt[n][0] == 0 || cnt[n][1] == 0 {
					continue // uncut net: its pins may still be boundary via other nets
				}
				for _, v := range h.nets[h.xnets[n]:h.xnets[n+1]] {
					if locked[v] {
						continue
					}
					s := side[v]
					if w[s]-h.vwgt[v] < lo || w[1-s]+h.vwgt[v] > hiCap {
						continue
					}
					if g := gain(v); g > bestGain || (g == bestGain && g > 0 && (best == -1 || v < best)) {
						best, bestGain = v, g
					}
				}
			}
			if best == -1 || bestGain <= 0 {
				break
			}
			s := side[best]
			for _, n := range h.pins[h.xpins[best]:h.xpins[best+1]] {
				cnt[n][s]--
				cnt[n][1-s]++
			}
			w[s] -= h.vwgt[best]
			w[1-s] += h.vwgt[best]
			side[best] = 1 - s
			locked[best] = true
			improved = true
		}
		if !improved {
			break
		}
	}
}

// CutWeight returns the total weight of nets with pins on both sides of
// the given assignment — the quality measure the refinement minimises.
func CutWeight(h *Hypergraph, side []uint8) int64 {
	var cut int64
	for n := 0; n < h.NumNets(); n++ {
		var c [2]int32
		for _, v := range h.nets[h.xnets[n]:h.xnets[n+1]] {
			c[side[v]]++
		}
		if c[0] > 0 && c[1] > 0 {
			cut += h.nwgt[n]
		}
	}
	return cut
}
