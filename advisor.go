package bisectlb

import (
	"fmt"

	"bisectlb/internal/bounds"
)

// MachineProfile describes the deployment the paper's conclusion says the
// algorithm choice must account for: "one must take into account the
// characteristics of the parallel machine architecture as well as the
// relative importance of fast running-time of the load balancing algorithm
// and of the quality of the achieved load balance."
type MachineProfile struct {
	// GlobalOpsCheap is true when O(log N) collectives (reductions,
	// barriers, parallel selection) are efficient on the target machine —
	// typical for tightly-coupled machines, false for loose clusters.
	GlobalOpsCheap bool
	// BalanceCritical is true when load-balance quality dominates the
	// total run time (long-running subproblems), false when the balancing
	// step itself must be as fast and simple as possible.
	BalanceCritical bool
	// Sequential is true when the load balancing itself runs on a single
	// processor anyway (e.g. a coordinator node), removing the need for a
	// parallel balancing algorithm.
	Sequential bool
}

// Recommendation is the advisor's outcome.
type Recommendation struct {
	Algorithm Algorithm
	// Kappa is the suggested threshold parameter when the algorithm is
	// BA-HF, zero otherwise.
	Kappa float64
	// Guarantee is the worst-case ratio bound of the recommendation.
	Guarantee float64
	// Rationale states the deciding trade-off in one sentence.
	Rationale string
}

// Recommend encodes the decision guidance of the paper's conclusion as a
// deterministic rule:
//
//   - A sequential balancer wants HF: best guarantee, simplest code.
//   - A parallel machine with cheap global operations wants PHF: HF's
//     guarantee in O(log N) time.
//   - Without cheap global operations, BA is the only algorithm with zero
//     global communication; when balance quality is critical, BA-HF with
//     κ = 1/ln(1+ε) recovers HF's guarantee up to the chosen ε at the cost
//     of the PHF-style second phase on processor groups of bounded size.
//
// The quality tolerance eps > 0 only matters for the BA-HF branch.
func Recommend(alpha float64, n int, eps float64, profile MachineProfile) (*Recommendation, error) {
	if err := bounds.ValidateAlpha(alpha); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("bisectlb: processor count must be ≥ 1, got %d", n)
	}
	if !(eps > 0) {
		return nil, fmt.Errorf("bisectlb: eps must be positive, got %v", eps)
	}
	switch {
	case profile.Sequential || n == 1:
		return &Recommendation{
			Algorithm: HFAlgorithm,
			Guarantee: bounds.RHF(alpha),
			Rationale: "balancing runs sequentially, so HF's best-in-class guarantee costs nothing extra",
		}, nil
	case profile.GlobalOpsCheap:
		return &Recommendation{
			Algorithm: PHFAlgorithm,
			Guarantee: bounds.RHF(alpha),
			Rationale: "cheap global operations make PHF deliver HF's exact partition in O(log N) time",
		}, nil
	case profile.BalanceCritical:
		kappa := bounds.KappaFor(eps)
		return &Recommendation{
			Algorithm: BAHFAlgorithm,
			Kappa:     kappa,
			Guarantee: bounds.BAHF(alpha, kappa),
			Rationale: fmt.Sprintf("no cheap global ops but quality matters: BA-HF with κ=%.2f stays within (1+%g) of HF's guarantee", kappa, eps),
		}, nil
	default:
		return &Recommendation{
			Algorithm: BAAlgorithm,
			Guarantee: bounds.BA(alpha, n),
			Rationale: "loosely-coupled machine and speed-focused balancing: BA needs no global communication and trivial free-processor management",
		}, nil
	}
}
