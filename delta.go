package bisectlb

import (
	"bisectlb/internal/core"
)

// This file is the incremental-replanning facade (DESIGN.md §15).
//
// A plan computed by BalanceInto describes the weights the kernel
// predicted; once the application runs, observed loads drift. Instead of
// replanning from scratch, a DeltaPlanner locates the parts whose
// drifted load left the α-band, re-bisects only those subtrees, and
// splices the fragments back over the pooled processors — returning the
// prior plan untouched when nothing drifted far enough, and falling back
// to a bit-identical from-scratch plan when nearly everything did.

// WeightDelta reports observed drift on one part: the part's true load
// is Factor times its planned weight.
type WeightDelta = core.WeightDelta

// PatchOptions configures a patch; Alpha is required, everything else
// has a usable zero value. PatchStats describes what the patch did, and
// PatchOutcome classifies it (noop / patched / full replan).
type (
	PatchOptions = core.PatchOptions
	PatchStats   = core.PatchStats
	PatchOutcome = core.PatchOutcome
)

// Patch outcomes (see core.PatchOutcome).
const (
	PatchNoop       = core.PatchNoop
	PatchPatched    = core.PatchPatched
	PatchFullReplan = core.PatchFullReplan
)

// PatchedPlan is the reusable result buffer of a patch: the spliced
// plan plus the Group/GroupProcs arrays that express several parts
// sharing one processor — something Plan alone cannot.
type PatchedPlan = core.PatchedPlan

// DeltaPlanner patches plans against drifted weight vectors. Like
// Planner it is not safe for concurrent use; pool one per goroutine.
type DeltaPlanner = core.DeltaPlanner

// NewDeltaPlanner returns a delta planner sized for plans of about n
// parts. Attach a ParallelPlanner with SetParallel to fan large repairs
// out across workers and route full replans through the multicore path.
func NewDeltaPlanner(n int) *DeltaPlanner { return core.NewDeltaPlanner(n) }

// Patch errors, for errors.Is against PatchInto failures.
var (
	ErrUnknownPart  = core.ErrUnknownPart
	ErrBadFactor    = core.ErrBadFactor
	ErrPlanMismatch = core.ErrPlanMismatch
)
