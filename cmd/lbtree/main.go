// Command lbtree runs one load-balancing algorithm on one workload family
// and dumps the recorded bisection tree — the T_p of the paper's analysis —
// as Graphviz DOT (render with `dot -Tsvg`), along with a structural
// summary. Useful for inspecting how HF's heaviest-first order and BA's
// proportional processor splits shape the tree differently.
package main

import (
	"flag"
	"fmt"
	"os"

	"bisectlb/internal/bisect"
	"bisectlb/internal/core"
	"bisectlb/internal/workload"
)

func main() {
	var (
		alg    = flag.String("alg", "hf", "algorithm: hf | ba | bahf | phf")
		family = flag.String("workload", "uniform", "workload: uniform | fem | quadrature | search | list")
		n      = flag.Int("n", 16, "processor count")
		lo     = flag.Float64("lo", 0.1, "lower α̂ bound (uniform workload)")
		hi     = flag.Float64("hi", 0.5, "upper α̂ bound (uniform workload)")
		kappa  = flag.Float64("kappa", 1.0, "BA-HF threshold parameter")
		seed   = flag.Uint64("seed", 1999, "instance seed")
	)
	flag.Parse()

	var fac workload.Factory
	switch *family {
	case "uniform":
		fac = workload.Uniform(*lo, *hi)
	case "fem":
		fac = workload.FEM()
	case "quadrature":
		fac = workload.Quadrature()
	case "search":
		fac = workload.SearchTree()
	case "list":
		fac = workload.List(10000, 0.2)
	default:
		fmt.Fprintf(os.Stderr, "lbtree: unknown workload %q\n", *family)
		os.Exit(2)
	}
	p := fac.New(*seed)

	var res *core.Result
	var err error
	opt := core.Options{RecordTree: true}
	switch *alg {
	case "hf":
		res, err = core.HF(p, *n, opt)
	case "ba":
		res, err = core.BA(p, *n, opt)
	case "bahf":
		res, err = core.BAHF(p, *n, fac.Alpha, *kappa, opt)
	case "phf":
		var phf *core.PHFResult
		phf, err = core.PHF(p, *n, fac.Alpha, opt)
		if err == nil {
			res = &phf.Result
		}
	default:
		fmt.Fprintf(os.Stderr, "lbtree: unknown algorithm %q\n", *alg)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbtree:", err)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr,
		"%s on %s (n=%d): %d parts, %d bisections, max depth %d, ratio %.4f\n",
		res.Algorithm, fac.Name, *n, len(res.Parts), res.Bisections, res.MaxDepth, res.Ratio)
	if err := bisect.ValidateRoot(p); err == nil && res.Tree != nil {
		fmt.Print(res.Tree.DOT())
	}
}
