package main

// Experiment X13: cluster mode under concurrent misses and node loss.
//
// Three lbserve nodes are wired into one consistent-hash cluster
// in-process (the same wiring cmd/lbserve does from flags). Phase 1
// proves the cluster-wide singleflight: identical misses fired
// concurrently at every node must run the planner exactly once across
// the cluster, counted by service.plans_computed. Phase 2 is the chaos
// sweep: an open-loop mixed load drives all three nodes round-robin
// while one node is killed mid-sweep; the client's failover retries must
// keep every request served (no hard failures) with a bounded p99.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"bisectlb/internal/cluster"
	"bisectlb/internal/service"
)

// x13P99Bound is the acceptance ceiling on the chaos-phase p99: generous
// against CI noise (plans in the mix compute in well under 10ms), but
// tight enough to catch a failover path that stalls on the dead peer.
const x13P99Bound = 2 * time.Second

// x13Node is one in-process cluster member.
type x13Node struct {
	srv  *service.Server
	node *cluster.Node
	url  string
}

func (n *x13Node) kill() {
	n.node.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	n.srv.Shutdown(ctx)
}

// startX13Cluster boots k wired nodes and blocks until every ring sees
// all k members.
func startX13Cluster(k int) ([]*x13Node, error) {
	nodes := make([]*x13Node, k)
	for i := range nodes {
		srv := service.New(service.Config{})
		nd, err := cluster.Start(cluster.Config{
			Addr:         "127.0.0.1:0",
			Heartbeat:    50 * time.Millisecond,
			DeadAfter:    300 * time.Millisecond,
			ReplInterval: 200 * time.Millisecond,
			Registry:     srv.Registry(),
			Fill:         srv.ClusterFill,
			Store:        srv.ClusterStore,
			Load:         srv.ClusterLoad,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster node %d: %w", i, err)
		}
		srv.SetCluster(nd)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("server %d: %w", i, err)
		}
		nodes[i] = &x13Node{srv: srv, node: nd, url: "http://" + addr.String()}
	}
	for i := 1; i < k; i++ {
		if err := nodes[i].node.Join(nodes[0].node.Addr()); err != nil {
			return nil, fmt.Errorf("join %d: %w", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		converged := true
		for _, n := range nodes {
			if n.srv.Registry().Gauge("service.cluster.live").Value() != int64(k) {
				converged = false
			}
		}
		if converged {
			return nodes, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("rings did not converge to %d members", k)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func x13PlansComputed(nodes []*x13Node) int64 {
	var total int64
	for _, n := range nodes {
		if n != nil {
			total += n.srv.Registry().Counter("service.plans_computed").Value()
		}
	}
	return total
}

// x13ExactlyOnce fires per-node concurrent identical misses and returns
// (requests fired, plans computed cluster-wide, all-200).
func x13ExactlyOnce(nodes []*x13Node, perNode int) (int, int64, bool) {
	body := `{"spec":{"family":"uniform","lo":0.25,"hi":0.5,"seed":99991},"n":128,"algorithm":"BA"}`
	baseline := x13PlansComputed(nodes)
	var wg sync.WaitGroup
	var bad int
	var mu sync.Mutex
	for _, n := range nodes {
		for g := 0; g < perNode; g++ {
			wg.Add(1)
			go func(url string) {
				defer wg.Done()
				resp, err := http.Post(url+"/v1/balance", "application/json", strings.NewReader(body))
				if err != nil {
					mu.Lock()
					bad++
					mu.Unlock()
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					mu.Lock()
					bad++
					mu.Unlock()
				}
			}(n.url)
		}
	}
	wg.Wait()
	return len(nodes) * perNode, x13PlansComputed(nodes) - baseline, bad == 0
}

// x13Study is the JSON shape of the BENCH_service.json "cluster"
// section.
type x13Study struct {
	Nodes       int `json:"nodes"`
	ExactlyOnce struct {
		Requests      int   `json:"concurrent_requests"`
		PlansComputed int64 `json:"plans_computed"`
		Pass          bool  `json:"pass"`
	} `json:"exactly_once"`
	Chaos struct {
		report
		KilledAfterSec float64 `json:"killed_after_s"`
		P99Bound       int64   `json:"p99_bound_ns"`
		Pass           bool    `json:"pass"`
	} `json:"chaos"`
	Pass bool `json:"pass"`
}

// runCluster runs X13 and returns the study plus overall pass/fail.
func runCluster(rps int, duration time.Duration, seed uint64, specPool int, outPath string) (*x13Study, bool) {
	study := &x13Study{Nodes: 3}
	nodes, err := startX13Cluster(3)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbload cluster:", err)
		return study, false
	}
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.kill()
			}
		}
	}()

	var b strings.Builder
	fmt.Fprintf(&b, "X13 — cluster mode: sharded serving, peer cache fill, failover\n")
	fmt.Fprintf(&b, "3 in-process nodes, consistent-hash ring, heartbeat failure detection\n\n")

	// Phase 1: exactly-once planning under concurrent misses everywhere.
	reqs, computed, allOK := x13ExactlyOnce(nodes, 8)
	study.ExactlyOnce.Requests = reqs
	study.ExactlyOnce.PlansComputed = computed
	study.ExactlyOnce.Pass = allOK && computed == 1
	fmt.Fprintf(&b, "phase 1 — exactly-once: %d concurrent identical misses across 3 nodes\n", reqs)
	fmt.Fprintf(&b, "  plans computed cluster-wide: %d (want 1)  all served: %v  → %s\n\n",
		computed, allOK, passStr(study.ExactlyOnce.Pass))

	// Phase 2: chaos sweep — kill one node a third of the way in; the
	// client's failover keeps every request served by the survivors.
	if duration < 3*time.Second {
		duration = 3 * time.Second
	}
	killAfter := duration / 3
	victim := nodes[2]
	timer := time.AfterFunc(killAfter, func() {
		fmt.Fprintf(os.Stderr, "lbload cluster: killing %s mid-sweep\n", victim.url)
		victim.kill()
	})
	defer timer.Stop()
	targets := []string{nodes[0].url, nodes[1].url, nodes[2].url}
	rep, err := runLoad(targets, rps, duration, seed, specPool)
	nodes[2] = nil // killed (or being killed); don't double-close
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbload cluster:", err)
		return study, false
	}
	study.Chaos.report = *rep
	study.Chaos.KilledAfterSec = killAfter.Seconds()
	study.Chaos.P99Bound = int64(x13P99Bound)
	study.Chaos.Pass = rep.Failed == 0 && rep.Latency.P99 <= int64(x13P99Bound)
	fmt.Fprintf(&b, "phase 2 — chaos sweep: %d rps for %v, node 3 killed at %v\n", rps, duration, killAfter)
	fmt.Fprintf(&b, "  requests %d  ok %d  failed %d  sheds %d  retries %d (failover to survivors)\n",
		rep.Requests, rep.OK, rep.Failed, rep.Sheds, rep.Retries)
	fmt.Fprintf(&b, "  latency p50=%s p99=%s (bound %v)  cluster-wide hit-rate %.1f%%\n",
		d(rep.Latency.P50), d(rep.Latency.P99), x13P99Bound, 100*rep.Cache.HitRate)
	if rep.Cluster != nil {
		fmt.Fprintf(&b, "  proxied %d  failover-local %d  plans-computed %d  unreachable-at-end %d\n",
			rep.Cluster.Proxied, rep.Cluster.FailoverLocal, rep.Cluster.PlansComputed, rep.Cluster.MetricsUnreachable)
	}
	fmt.Fprintf(&b, "  → %s\n", passStr(study.Chaos.Pass))

	study.Pass = study.ExactlyOnce.Pass && study.Chaos.Pass
	fmt.Fprintf(&b, "\nX13 overall: %s\n", passStr(study.Pass))
	text := b.String()
	fmt.Print(text)
	writeFile(outPath, text)
	return study, study.Pass
}

func passStr(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
