package main

// Experiment X14: incremental replanning — patched-vs-fresh planning
// latency and ratio degradation as drift grows (EXPERIMENTS.md).
//
// One in-process server per drift cell. Each cell warms a prior plan,
// drifts its k heaviest single-processor parts to a fixed multiple of
// the mean, and times POST /v1/rebalance patches against POST
// /v1/balance fresh plans of the same size. Latencies are the
// server-side planner timings (service.rebalance.patch_ns vs
// service.compute_ns, windowed via /metricz sums so warmup repetitions
// are excluded); every repetition perturbs one drift factor in the
// 1e-9 digits, which lands on a fresh cache key without changing the
// drift regime.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"bisectlb/internal/obs"
)

// X14 shape: repetitions per cell after warmup, and the drift regime.
const (
	x14N          = 2048
	x14Seed       = 4242
	x14DriftMult  = 10.0 // drifted parts land at 10× the mean
	x14Warmup     = 4
	x14Reps       = 20
	x14SmallDrift = 8 // cells with ≤ this many drifted parts must beat fresh planning
)

// x14Cell is one drift magnitude of the study.
type x14Cell struct {
	DriftedParts int     `json:"drifted_parts"`
	DriftMult    float64 `json:"drift_mult"`
	Outcome      string  `json:"outcome"`
	Band         float64 `json:"band"`
	Dirty        int     `json:"dirty"`
	PriorRatio   float64 `json:"prior_ratio"`
	PatchedRatio float64 `json:"patched_ratio"`
	PatchMeanNs  float64 `json:"patch_mean_ns"`
	FreshMeanNs  float64 `json:"fresh_mean_ns"`
	Speedup      float64 `json:"speedup"`
}

// x14Study is the {rebalance} section of BENCH_service.json.
type x14Study struct {
	N     int       `json:"n"`
	Seed  uint64    `json:"seed"`
	Reps  int       `json:"reps"`
	Cells []x14Cell `json:"cells"`
	Pass  bool      `json:"pass"`
}

// postJSON fires one POST and decodes the body into out (which may be
// nil to discard). Non-200 statuses are errors.
func postJSON(client *http.Client, url, path, body string, out any) error {
	resp, err := client.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, buf.String())
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(buf.Bytes(), out)
}

// x14Plan is the slice of a served plan the study reads back.
type x14Plan struct {
	Parts []struct {
		ID     uint64  `json:"id"`
		Weight float64 `json:"weight"`
		Procs  int     `json:"procs"`
	} `json:"parts"`
	Total     float64 `json:"total"`
	Ratio     float64 `json:"ratio"`
	Signature string  `json:"signature"`
	Rebalance *struct {
		Outcome  string  `json:"outcome"`
		Band     float64 `json:"band"`
		Dirty    int     `json:"dirty"`
		Oversize int     `json:"oversize"`
	} `json:"rebalance"`
}

// windowedMean returns the mean of a histogram's observations between
// two snapshots.
func windowedMean(before, after obs.Snapshot, name string) float64 {
	b, a := before.Histograms[name], after.Histograms[name]
	if a.Count <= b.Count {
		return 0
	}
	return float64(a.Sum-b.Sum) / float64(a.Count-b.Count)
}

// x14Deltas builds the cell's drift vector: the k heaviest 1-processor
// parts pushed to mult× the mean, with the first factor perturbed in
// the 1e-9 digits by rep so every repetition misses the drift cache.
func x14Deltas(prior *x14Plan, k int, mult float64, rep int) string {
	mean := prior.Total / float64(x14N)
	idx := make([]int, 0, len(prior.Parts))
	for i, pt := range prior.Parts {
		if pt.Procs == 1 {
			idx = append(idx, i)
		}
	}
	for i := 0; i < k && i < len(idx); i++ { // selection sort: k heaviest first
		best := i
		for j := i + 1; j < len(idx); j++ {
			if prior.Parts[idx[j]].Weight > prior.Parts[idx[best]].Weight {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	if k > len(idx) {
		k = len(idx)
	}
	var b strings.Builder
	b.WriteByte('[')
	for i := 0; i < k; i++ {
		pt := prior.Parts[idx[i]]
		f := mult * mean / pt.Weight
		if i == 0 {
			f *= 1 + 1e-9*float64(rep+1)
		}
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"id":%d,"factor":%g}`, pt.ID, f)
	}
	b.WriteByte(']')
	return b.String()
}

const x14SpecFmt = `{"spec":{"family":"uniform","lo":0.1,"hi":0.5,"seed":%d},"n":%d,"algorithm":"HF","alpha":0.1%s}`

// runRebalance drives the X14 study and renders its table. pass is false
// when a request fails, an outcome lands outside its expected regime, a
// patched ratio escapes the band, or patching a small drift is not
// faster than fresh planning.
func runRebalance(outPath string) (*x14Study, bool) {
	client := &http.Client{}
	study := &x14Study{N: x14N, Seed: x14Seed, Reps: x14Reps, Pass: true}
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "lbload rebalance: "+format+"\n", args...)
		study.Pass = false
	}

	cells := []struct {
		k    int
		mult float64
	}{
		// k heaviest parts at 10× the mean spans noop → patched → the
		// regime where patching does more work than fresh planning; the
		// final cell concentrates nearly all drifted weight in one part,
		// crossing the full-replan threshold.
		{0, x14DriftMult}, {1, x14DriftMult}, {2, x14DriftMult}, {8, x14DriftMult},
		{32, x14DriftMult}, {128, x14DriftMult}, {512, x14DriftMult},
		{1, 1e6},
	}
	for _, c := range cells {
		k, mult := c.k, c.mult
		url, shutdown := startInProcess(0, 1024)
		var prior x14Plan
		if err := postJSON(client, url, "/v1/balance", fmt.Sprintf(x14SpecFmt, x14Seed, x14N, ""), &prior); err != nil {
			fail("prior: %v", err)
			shutdown()
			break
		}

		rebBody := func(rep int) string {
			deltas := x14Deltas(&prior, k, mult, rep)
			extra := fmt.Sprintf(`,"prior_signature":%q,"deltas":%s`, prior.Signature, deltas)
			return fmt.Sprintf(x14SpecFmt, x14Seed, x14N, extra)
		}
		var patched x14Plan
		cellOK := true
		for rep := 0; rep < x14Warmup && cellOK; rep++ {
			if err := postJSON(client, url, "/v1/rebalance", rebBody(rep), &patched); err != nil {
				fail("cell k=%d warmup: %v", k, err)
				cellOK = false
			}
		}
		before, err := fetchMetrics(client, url)
		if err != nil {
			fail("cell k=%d metrics: %v", k, err)
			cellOK = false
		}
		for rep := x14Warmup; rep < x14Warmup+x14Reps && cellOK; rep++ {
			if err := postJSON(client, url, "/v1/rebalance", rebBody(rep), &patched); err != nil {
				fail("cell k=%d rep %d: %v", k, rep, err)
				cellOK = false
			}
		}
		// Fresh-planning reference: same family and size, one unique seed
		// per repetition so every request computes.
		for rep := 0; rep < x14Reps && cellOK; rep++ {
			seed := x14Seed + 1000 + uint64(k*x14Reps+rep)
			if err := postJSON(client, url, "/v1/balance", fmt.Sprintf(x14SpecFmt, seed, x14N, ""), nil); err != nil {
				fail("cell k=%d fresh rep %d: %v", k, rep, err)
				cellOK = false
			}
		}
		after, err := fetchMetrics(client, url)
		if err != nil {
			fail("cell k=%d metrics: %v", k, err)
			cellOK = false
		}
		shutdown()
		if !cellOK {
			continue
		}

		cell := x14Cell{
			DriftedParts: k,
			DriftMult:    mult,
			PriorRatio:   prior.Ratio,
			PatchedRatio: patched.Ratio,
			PatchMeanNs:  windowedMean(before, after, "service.rebalance.patch_ns"),
			FreshMeanNs:  windowedMean(before, after, "service.compute_ns"),
		}
		if cell.PatchMeanNs > 0 {
			cell.Speedup = cell.FreshMeanNs / cell.PatchMeanNs
		}
		if rb := patched.Rebalance; rb != nil {
			cell.Outcome, cell.Band, cell.Dirty = rb.Outcome, rb.Band, rb.Dirty
			if rb.Oversize == 0 && patched.Ratio > rb.Band*(1+1e-6) {
				fail("cell k=%d: patched ratio %g escapes band %g", k, patched.Ratio, rb.Band)
			}
		} else {
			fail("cell k=%d: response without a rebalance certificate", k)
		}
		if k == 0 && cell.Outcome != "noop" {
			fail("cell k=0: outcome %q, want noop", cell.Outcome)
		}
		if mult >= 1e5 && cell.Outcome != "full_replan" {
			fail("cell k=%d mult=%g: outcome %q, want full_replan", k, mult, cell.Outcome)
		}
		if mult == x14DriftMult && k >= 1 && k <= x14SmallDrift {
			if cell.Outcome != "patched" {
				fail("cell k=%d: outcome %q, want patched", k, cell.Outcome)
			}
			if cell.PatchMeanNs >= cell.FreshMeanNs {
				fail("cell k=%d: patch mean %.0fns not below fresh mean %.0fns", k, cell.PatchMeanNs, cell.FreshMeanNs)
			}
		}
		study.Cells = append(study.Cells, cell)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "X14 — incremental replanning: patched vs fresh as drift grows\n")
	fmt.Fprintf(&b, "uniform family, N=%d, HF, α=0.1, seed %d; k heaviest parts drifted to %g× the mean;\n",
		x14N, uint64(x14Seed), x14DriftMult)
	fmt.Fprintf(&b, "means over %d repetitions per cell after %d warmup (server-side planner timings)\n\n",
		x14Reps, x14Warmup)
	fmt.Fprintf(&b, "| drifted parts | outcome | band | patched ratio | patch mean | fresh mean | speedup |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|\n")
	for _, c := range study.Cells {
		fmt.Fprintf(&b, "| %d | %s | %.2f | %.3f | %s | %s | %.1fx |\n",
			c.DriftedParts, c.Outcome, c.Band, c.PatchedRatio,
			d(int64(c.PatchMeanNs)), d(int64(c.FreshMeanNs)), c.Speedup)
	}
	if study.Pass {
		fmt.Fprintf(&b, "\nPASS: small drifts patch faster than fresh planning; ratios stay inside the band\n")
	} else {
		fmt.Fprintf(&b, "\nFAIL: see stderr\n")
	}
	text := b.String()
	fmt.Print(text)
	appendMarkedSection(outPath, "X14", text)
	return study, study.Pass
}

// appendMarkedSection idempotently installs text as a marker-delimited
// block at the end of path, preserving everything outside the markers
// (results/dynamic.txt also carries the X6 dynamic-drift table).
func appendMarkedSection(path, name, text string) {
	if path == "" {
		return
	}
	begin := fmt.Sprintf("=== %s (begin) ===\n", name)
	end := fmt.Sprintf("=== %s (end) ===\n", name)
	var keep string
	if data, err := os.ReadFile(path); err == nil {
		keep = string(data)
		if i := strings.Index(keep, begin); i >= 0 {
			rest := ""
			if j := strings.Index(keep[i:], end); j >= 0 {
				rest = keep[i+j+len(end):]
			}
			keep = keep[:i] + rest
		}
	}
	if keep = strings.TrimRight(keep, "\n"); keep != "" {
		keep += "\n\n"
	}
	os.MkdirAll(filepath.Dir(path), 0o755)
	out := keep + begin + text + end
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "lbload:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (section %s)\n", path, name)
}
