package main

// Bench gate: compare a fresh in-process load smoke against the
// checked-in BENCH_service.json, so a serving-perf regression surfaces
// in CI instead of rotting silently in the trajectory file.
//
// Load numbers on shared CI machines are noisy, so the gate is
// deliberately warn-only by default with generous thresholds; setting
// BENCH_GATE_STRICT=1 escalates a violation to a non-zero exit for
// environments quiet enough to trust the numbers.

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// gateThresholds: fail when fresh goodput falls below this fraction of
// the baseline, or fresh p99 exceeds this multiple of the baseline.
const (
	gateMinRPSFrac = 0.5
	gateMaxP99Mult = 3.0
)

// baselineLoad extracts the load report from a baseline file, accepting
// both the sectioned {"load": …} shape and the legacy top-level report.
func baselineLoad(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sections map[string]json.RawMessage
	if err := json.Unmarshal(data, &sections); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	raw, ok := sections["load"]
	if !ok {
		raw = data // legacy: the whole file is one report
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("parsing load section of %s: %w", path, err)
	}
	if rep.TargetRPS == 0 || rep.Requests == 0 {
		return nil, fmt.Errorf("%s has no usable load baseline (target_rps=%d requests=%d)",
			path, rep.TargetRPS, rep.Requests)
	}
	return &rep, nil
}

// runGate loads the baseline, repeats its load shape against a fresh
// in-process server, and compares. Returns the process exit code.
func runGate(baselinePath string, seed uint64, specPool int) int {
	base, err := baselineLoad(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbload gate:", err)
		return 1
	}
	duration := time.Duration(base.DurationSec * float64(time.Second))
	if duration <= 0 {
		duration = 3 * time.Second
	}
	url, shutdown := startInProcess(0, 1024)
	defer shutdown()
	fresh, err := runLoad([]string{url}, base.TargetRPS, duration, seed, specPool)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbload gate:", err)
		return 1
	}

	rpsFrac := 0.0
	if base.AchievedRPS > 0 {
		rpsFrac = fresh.AchievedRPS / base.AchievedRPS
	}
	p99Mult := 0.0
	if base.Latency.P99 > 0 {
		p99Mult = float64(fresh.Latency.P99) / float64(base.Latency.P99)
	}
	fmt.Printf("bench gate: baseline %s (%d rps, %.0fs)\n", baselinePath, base.TargetRPS, base.DurationSec)
	fmt.Printf("  goodput  fresh %.1f rps vs baseline %.1f rps (%.0f%%, floor %.0f%%)\n",
		fresh.AchievedRPS, base.AchievedRPS, 100*rpsFrac, 100*gateMinRPSFrac)
	fmt.Printf("  p99      fresh %s vs baseline %s (%.2fx, ceiling %.1fx)\n",
		d(fresh.Latency.P99), d(base.Latency.P99), p99Mult, gateMaxP99Mult)

	violated := rpsFrac < gateMinRPSFrac || p99Mult > gateMaxP99Mult
	violated = checkClusterSection(baselinePath) || violated
	violated = checkRebalanceSection(baselinePath) || violated
	if !violated {
		fmt.Println("bench gate: OK — fresh run within the noise envelope of the baseline")
		return 0
	}
	strict := os.Getenv("BENCH_GATE_STRICT") == "1"
	if strict {
		fmt.Fprintln(os.Stderr, "bench gate: FAIL — fresh run regressed past the envelope (BENCH_GATE_STRICT=1)")
		return 1
	}
	fmt.Println("bench gate: WARN — fresh run outside the envelope; not failing (set BENCH_GATE_STRICT=1 to enforce)")
	return 0
}

// checkRebalanceSection sanity-checks the baseline's "rebalance" section
// (the X14 study): when present it must record a passing run whose small
// drift cells patched faster than fresh planning. Warn-only under the
// same BENCH_GATE_STRICT escalation; a baseline without the section is
// fine.
func checkRebalanceSection(path string) (violated bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	var sections map[string]json.RawMessage
	if json.Unmarshal(data, &sections) != nil {
		return false
	}
	raw, ok := sections["rebalance"]
	if !ok {
		return false
	}
	var study x14Study
	if err := json.Unmarshal(raw, &study); err != nil {
		fmt.Printf("bench gate: rebalance section unreadable (%v)\n", err)
		return true
	}
	minSpeedup := 0.0
	for _, c := range study.Cells {
		if c.DriftMult == x14DriftMult && c.DriftedParts >= 1 && c.DriftedParts <= x14SmallDrift &&
			(minSpeedup == 0 || c.Speedup < minSpeedup) {
			minSpeedup = c.Speedup
		}
	}
	fmt.Printf("bench gate: rebalance baseline — %d cells, small-drift speedup ≥ %.1fx, pass=%v\n",
		len(study.Cells), minSpeedup, study.Pass)
	if !study.Pass {
		fmt.Println("bench gate: rebalance section records a FAILING X14 run — regenerate with `make sweep-rebalance`")
		return true
	}
	if minSpeedup > 0 && minSpeedup <= 1 {
		fmt.Println("bench gate: rebalance baseline shows no patch speedup at small drift")
		return true
	}
	return false
}

// checkClusterSection sanity-checks the baseline's "cluster" section (the
// X13 study): when present it must record a passing run with the
// exactly-once invariant intact. The check is warn-only under the same
// BENCH_GATE_STRICT escalation as the load envelope; a baseline without
// the section (pre-cluster trajectory files) is fine.
func checkClusterSection(path string) (violated bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	var sections map[string]json.RawMessage
	if json.Unmarshal(data, &sections) != nil {
		return false
	}
	raw, ok := sections["cluster"]
	if !ok {
		return false
	}
	var study x13Study
	if err := json.Unmarshal(raw, &study); err != nil {
		fmt.Printf("bench gate: cluster section unreadable (%v)\n", err)
		return true
	}
	fmt.Printf("bench gate: cluster baseline — exactly-once computed %d plan(s), chaos failed=%d, pass=%v\n",
		study.ExactlyOnce.PlansComputed, study.Chaos.Failed, study.Pass)
	if !study.Pass {
		fmt.Println("bench gate: cluster section records a FAILING X13 run — regenerate with `make sweep-cluster`")
		return true
	}
	return false
}
