// Command lbload is an open-loop load generator for the lbserve service.
// It fires POST /v1/balance requests at a target rate (never waiting for
// responses before sending the next — the open-loop discipline that
// exposes queueing collapse), drawing each request from a mixed
// distribution of algorithms, processor counts and problem specs with a
// bounded spec pool so repeated identities exercise the plan cache.
//
// It reports throughput, latency quantiles (client-observed, via the obs
// histogram substrate) and cache hit rates (from the server's /metricz),
// writes a human-readable report to -out and a machine-readable
// BENCH_service.json to -json — the repo's serving-perf trajectory file.
//
// Modes:
//
//	lbload -rps 200 -duration 5s            # against a running lbserve
//	lbload -inprocess ...                   # spin up the service in-process
//	lbload -sweep -inprocess ...            # X8: workers × cache on/off grid
//	lbload -slo                             # X11: overload SLO + tenant
//	                                        # isolation + warm-restart chaos
//	lbload -cluster                         # X13: 3-node cluster, exactly-once
//	                                        # planning + mid-sweep node kill
//	lbload -rebalance                       # X14: incremental replanning —
//	                                        # patched vs fresh as drift grows
//	lbload -targets url1,url2,url3 ...      # drive a cluster round-robin
//	lbload -gate BENCH_service.json         # noise-aware perf gate vs baseline
//
// The client honours Retry-After on 429 with a bounded backoff (at most
// two retries, sleeps capped at 2s) and reports sheds separately from
// hard errors; with multiple -targets, connection failures and 503s fail
// over to the next target.
//
// BENCH_service.json is sectioned: plain runs write {"load": …}, -slo
// writes {"slo": …}, -sweep writes {"sweep": …}, -cluster writes
// {"cluster": …}, -rebalance writes {"rebalance": …}; each mode
// preserves the other sections.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bisectlb/internal/obs"
	"bisectlb/internal/service"
	"bisectlb/internal/xrand"
)

func main() {
	var (
		url       = flag.String("url", "http://127.0.0.1:8733", "lbserve base URL")
		rps       = flag.Int("rps", 200, "target request rate (open loop)")
		duration  = flag.Duration("duration", 5*time.Second, "load duration")
		seed      = flag.Uint64("seed", 1999, "mix-sampling seed")
		specPool  = flag.Int("spec-pool", 8, "distinct problem specs in the mix (smaller = more cache hits)")
		outPath   = flag.String("out", "results/service_load.txt", "human-readable report file (empty disables)")
		jsonPath  = flag.String("json", "BENCH_service.json", "machine-readable report file (empty disables)")
		inprocess = flag.Bool("inprocess", false, "start the service in-process and load it over loopback")
		workers   = flag.Int("workers", 0, "in-process server worker-pool size (0 = GOMAXPROCS)")
		cacheCap  = flag.Int("cache", 1024, "in-process server cache capacity (negative disables)")
		targets   = flag.String("targets", "", "comma-separated lbserve base URLs, driven round-robin (overrides -url; failover across them)")
		sweep     = flag.Bool("sweep", false, "X8 study: sweep worker-pool size × cache on/off in-process")
		clusterX  = flag.Bool("cluster", false, "X13 study: 3-node in-process cluster — exactly-once planning + mid-sweep node kill")
		clustOut  = flag.String("cluster-out", "results/cluster.txt", "X13 human-readable report file (empty disables)")
		slo       = flag.Bool("slo", false, "X11 study: overload SLO, tenant isolation and warm-restart chaos in-process")
		sloOut    = flag.String("slo-out", "results/service_slo.txt", "X11 human-readable report file (empty disables)")
		rebal     = flag.Bool("rebalance", false, "X14 study: incremental replanning — patched vs fresh planning as drift grows")
		rebalOut  = flag.String("rebalance-out", "results/dynamic.txt", "X14 human-readable report file, appended marker-delimited (empty disables)")
		gatePath  = flag.String("gate", "", "compare a fresh in-process smoke against this baseline JSON and exit")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the load run to this file")
		memProf   = flag.String("memprofile", "", "write an allocation profile at exit to this file")
	)
	flag.Parse()

	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbload:", err)
		os.Exit(1)
	}
	defer stopProf()

	if *gatePath != "" {
		code := runGate(*gatePath, *seed, *specPool)
		stopProf()
		os.Exit(code)
	}
	if *slo {
		study, pass := runSLO(*seed, *duration, *sloOut)
		if *jsonPath != "" {
			writeJSONSection(*jsonPath, "slo", study)
		}
		if !pass {
			stopProf()
			os.Exit(1)
		}
		return
	}
	if *rebal {
		study, pass := runRebalance(*rebalOut)
		if *jsonPath != "" {
			writeJSONSection(*jsonPath, "rebalance", study)
		}
		if !pass {
			stopProf()
			os.Exit(1)
		}
		return
	}
	if *sweep {
		runSweep(*rps, *duration, *seed, *specPool, *outPath, *jsonPath)
		return
	}
	if *clusterX {
		study, pass := runCluster(*rps, *duration, *seed, *specPool, *clustOut)
		if *jsonPath != "" {
			writeJSONSection(*jsonPath, "cluster", study)
		}
		if !pass {
			stopProf()
			os.Exit(1)
		}
		return
	}

	targetList := []string{*url}
	if *targets != "" {
		targetList = targetList[:0]
		for _, t := range strings.Split(*targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				// Accept bare host:port targets.
				if !strings.HasPrefix(t, "http://") && !strings.HasPrefix(t, "https://") {
					t = "http://" + t
				}
				targetList = append(targetList, t)
			}
		}
	}
	var shutdown func()
	if *inprocess {
		var target string
		target, shutdown = startInProcess(*workers, *cacheCap)
		targetList = []string{target}
		defer shutdown()
	}
	rep, err := runLoad(targetList, *rps, *duration, *seed, *specPool)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbload:", err)
		os.Exit(1)
	}
	text := rep.table()
	fmt.Print(text)
	writeFile(*outPath, text)
	if *jsonPath != "" {
		writeJSONSection(*jsonPath, "load", rep)
	}
	if rep.Failed > 0 {
		stopProf() // os.Exit skips defers; flush the profiles first
		os.Exit(1)
	}
}

// startProfiles starts CPU profiling and arranges an allocation-profile
// snapshot for when the returned (idempotent) stop function runs. Either
// path may be empty to skip that profile. The profiles capture the whole
// lbload process — generator and, with -inprocess, the service itself —
// which is the intended use: one binary, one profile, no cross-process
// correlation needed.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuF *os.File
	if cpuPath != "" {
		cpuF, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, err
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if cpuF != nil {
				pprof.StopCPUProfile()
				cpuF.Close()
				fmt.Fprintf(os.Stderr, "lbload: cpu profile: %s\n", cpuPath)
			}
			if memPath == "" {
				return
			}
			f, ferr := os.Create(memPath)
			if ferr != nil {
				fmt.Fprintln(os.Stderr, "lbload: memprofile:", ferr)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects so the snapshot is stable
			if werr := pprof.Lookup("allocs").WriteTo(f, 0); werr != nil {
				fmt.Fprintln(os.Stderr, "lbload: memprofile:", werr)
				return
			}
			fmt.Fprintf(os.Stderr, "lbload: allocation profile: %s\n", memPath)
		})
	}, nil
}

// startInProcess boots a service.Server on a loopback listener.
func startInProcess(workers, cacheCap int) (url string, shutdown func()) {
	srv := service.New(service.Config{Workers: workers, CacheCapacity: cacheCap})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbload: in-process server:", err)
		os.Exit(1)
	}
	return "http://" + addr.String(), func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
}

// report is the outcome of one load run, in both renderable and
// JSON-encodable form. Durations are nanoseconds.
type report struct {
	Target      string  `json:"target"`
	TargetRPS   int     `json:"target_rps"`
	DurationSec float64 `json:"duration_s"`
	Requests    int64   `json:"requests"`
	OK          int64   `json:"ok"`
	Failed      int64   `json:"failed"`
	// Sheds counts requests the server deliberately rejected with 429
	// after the client's bounded Retry-After backoff was exhausted —
	// load shedding working as designed, reported apart from Failed
	// (hard errors). Retries counts every backoff and failover attempt.
	Sheds       int64      `json:"sheds"`
	Retries     int64      `json:"retries"`
	Rejected429 int64      `json:"rejected_429"`
	Rejected503 int64      `json:"rejected_503"`
	AchievedRPS float64    `json:"achieved_rps"`
	Latency     latSumm    `json:"latency_ns"`
	HitLatency  latSumm    `json:"hit_latency_ns"`
	MissLatency latSumm    `json:"miss_latency_ns"`
	Cache       cacheRp    `json:"cache"`
	Cluster     *clusterRp `json:"cluster,omitempty"`
}

// clusterRp aggregates the cluster-mode counters across every target of
// a multi-target run.
type clusterRp struct {
	Proxied            int64 `json:"proxied"`
	FailoverLocal      int64 `json:"failover_local"`
	PlansComputed      int64 `json:"plans_computed"`
	MetricsUnreachable int   `json:"metrics_unreachable,omitempty"`
}

type latSumm struct {
	P50  int64   `json:"p50"`
	P90  int64   `json:"p90"`
	P99  int64   `json:"p99"`
	Max  int64   `json:"max"`
	Mean float64 `json:"mean"`
}

type cacheRp struct {
	ClientHits int64   `json:"client_observed_hits"`
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	HitRate    float64 `json:"hit_rate"`
	Coalesced  int64   `json:"coalesced"`
}

func summ(h obs.HistogramSnapshot) latSumm {
	return latSumm{P50: h.P50, P90: h.P90, P99: h.P99, Max: h.Max, Mean: h.Mean}
}

// mix holds the request distribution: a bounded pool of spec bodies so
// identities repeat, crossed with algorithm and N draws.
type mix struct {
	rng    *xrand.Source
	bodies []string
}

func newMix(seed uint64, pool int) *mix {
	if pool < 1 {
		pool = 1
	}
	rng := xrand.New(seed)
	algs := []string{"HF", "HF", "BA", "PHF", "BA-HF"} // HF-weighted, all α-aware paths covered
	ns := []int{16, 64, 256, 1024}
	bodies := make([]string, pool)
	for i := range bodies {
		alg := algs[rng.Intn(len(algs))]
		n := ns[rng.Intn(len(ns))]
		if rng.Intn(4) == 0 {
			bodies[i] = fmt.Sprintf(
				`{"spec":{"family":"list","elems":%d,"split_alpha":0.2,"seed":%d},"n":%d,"algorithm":%q,"alpha":0.2}`,
				1000+rng.Intn(4000), rng.Intn(1000), n, alg)
		} else {
			bodies[i] = fmt.Sprintf(
				`{"spec":{"family":"uniform","lo":0.1,"hi":0.5,"seed":%d},"n":%d,"algorithm":%q,"alpha":0.1}`,
				rng.Intn(1000), n, alg)
		}
	}
	return &mix{rng: rng, bodies: bodies}
}

// Shed-backoff bounds: a 429 is retried at most maxShedRetries times,
// sleeping what the server's Retry-After asks for, capped so a
// misbehaving server cannot stall the generator.
const (
	maxShedRetries    = 2
	maxRetryAfter     = 2 * time.Second
	defaultRetryAfter = 100 * time.Millisecond
)

// retryAfterDelay parses a 429's Retry-After header (delta-seconds form)
// into a bounded sleep.
func retryAfterDelay(h http.Header) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(h.Get("Retry-After")))
	if err != nil || secs < 0 {
		return defaultRetryAfter
	}
	delay := time.Duration(secs) * time.Second
	if delay > maxRetryAfter {
		delay = maxRetryAfter
	}
	if delay == 0 {
		delay = defaultRetryAfter
	}
	return delay
}

// runLoad drives the open-loop generator over one or more targets
// (round-robin) and assembles the report. Sheds (429 after bounded
// Retry-After backoff) are reported separately from hard failures; with
// multiple targets, a connection error or 503 fails over to the next
// target, which is how the X13 chaos sweep keeps serving through a
// mid-sweep node kill.
func runLoad(targets []string, rps int, duration time.Duration, seed uint64, specPool int) (*report, error) {
	if rps < 1 {
		return nil, fmt.Errorf("rps must be ≥ 1, got %d", rps)
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("no targets")
	}
	client := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        512,
			MaxIdleConnsPerHost: 512,
		},
	}
	// Preflight: snapshot every target's metrics. With a single target an
	// unreachable server is fatal; in a fleet an already-dead member is
	// tolerated the same way a mid-run death is (skipped in aggregation,
	// served around by failover) as long as someone is up.
	before := make(map[string]obs.Snapshot, len(targets))
	for _, t := range targets {
		sn, err := fetchMetrics(client, t)
		if err != nil {
			if len(targets) == 1 {
				return nil, fmt.Errorf("server not reachable at %s: %w (start lbserve first, or pass -inprocess)", t, err)
			}
			fmt.Fprintf(os.Stderr, "lbload: target %s unreachable at start; relying on failover\n", t)
			continue
		}
		before[t] = sn
	}
	if len(before) == 0 {
		return nil, fmt.Errorf("no target reachable (of %d); start lbserve first, or pass -inprocess", len(targets))
	}

	m := newMix(seed, specPool)
	reg := obs.NewRegistry()
	latAll := reg.Histogram("load.latency_ns")
	latHit := reg.Histogram("load.latency_hit_ns")
	latMiss := reg.Histogram("load.latency_miss_ns")
	var sent, okCnt, failed, sheds, retries, r429, r503, clientHits atomic.Int64

	// Pre-draw the request sequence so the hot loop does no RNG work and
	// the mix is deterministic in the seed regardless of scheduling.
	total := int(float64(rps) * duration.Seconds())
	seq := make([]string, total)
	for i := range seq {
		seq[i] = m.bodies[m.rng.Intn(len(m.bodies))]
	}

	interval := time.Second / time.Duration(rps)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < total; i++ {
		<-ticker.C
		body := seq[i]
		wg.Add(1)
		sent.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			shedRetries, hops, ti := 0, 0, i
			for {
				resp, err := client.Post(targets[ti%len(targets)]+"/v1/balance", "application/json", strings.NewReader(body))
				if err != nil {
					// Connection refused/reset: the target may be dead —
					// fail the request over to the next target.
					if hops < len(targets)-1 {
						hops++
						ti++
						retries.Add(1)
						continue
					}
					failed.Add(1)
					return
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					r429.Add(1)
					if shedRetries < maxShedRetries {
						delay := retryAfterDelay(resp.Header)
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						shedRetries++
						retries.Add(1)
						time.Sleep(delay)
						continue
					}
				}
				if resp.StatusCode == http.StatusServiceUnavailable && hops < len(targets)-1 {
					// Draining/dying node: another target can serve this.
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					hops++
					ti++
					retries.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				lat := time.Since(t0).Nanoseconds()
				latAll.Observe(lat)
				switch resp.StatusCode {
				case http.StatusOK:
					okCnt.Add(1)
					if resp.Header.Get("X-Lbserve-Cache") == "hit" {
						clientHits.Add(1)
						latHit.Observe(lat)
					} else {
						latMiss.Observe(lat)
					}
				case http.StatusTooManyRequests:
					// Shed even after backoff — deliberate load rejection,
					// reported separately from hard errors.
					sheds.Add(1)
				case http.StatusServiceUnavailable:
					r503.Add(1)
					failed.Add(1)
				default:
					failed.Add(1)
				}
				return
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Aggregate server-side counters across every target still
	// reachable; a target killed mid-run (the X13 chaos sweep) is
	// skipped and counted as unreachable.
	var hits, misses, coalesced, proxied, failover, computed int64
	unreachable := 0
	for _, t := range targets {
		b, ok := before[t]
		if !ok {
			unreachable++ // dead at preflight: no baseline, no deltas
			continue
		}
		after, err := fetchMetrics(client, t)
		if err != nil {
			unreachable++
			continue
		}
		hits += after.Counters["service.cache_hits"] - b.Counters["service.cache_hits"]
		misses += after.Counters["service.cache_misses"] - b.Counters["service.cache_misses"]
		coalesced += after.Counters["service.singleflight_coalesced"] - b.Counters["service.singleflight_coalesced"]
		proxied += after.Counters["service.cluster.proxied"] - b.Counters["service.cluster.proxied"]
		failover += after.Counters["service.cluster.failover_local"] - b.Counters["service.cluster.failover_local"]
		computed += after.Counters["service.plans_computed"] - b.Counters["service.plans_computed"]
	}
	if unreachable == len(targets) {
		return nil, fmt.Errorf("no target reachable after the run")
	}
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}

	sn := reg.Snapshot()
	rep := &report{
		Target:      strings.Join(targets, ","),
		TargetRPS:   rps,
		DurationSec: duration.Seconds(),
		Requests:    sent.Load(),
		OK:          okCnt.Load(),
		Failed:      failed.Load(),
		Sheds:       sheds.Load(),
		Retries:     retries.Load(),
		Rejected429: r429.Load(),
		Rejected503: r503.Load(),
		AchievedRPS: float64(okCnt.Load()) / elapsed.Seconds(),
		Latency:     summ(sn.Histograms["load.latency_ns"]),
		HitLatency:  summ(sn.Histograms["load.latency_hit_ns"]),
		MissLatency: summ(sn.Histograms["load.latency_miss_ns"]),
		Cache: cacheRp{
			ClientHits: clientHits.Load(),
			Hits:       hits,
			Misses:     misses,
			HitRate:    hitRate,
			Coalesced:  coalesced,
		},
	}
	if len(targets) > 1 {
		rep.Cluster = &clusterRp{
			Proxied:            proxied,
			FailoverLocal:      failover,
			PlansComputed:      computed,
			MetricsUnreachable: unreachable,
		}
	}
	return rep, nil
}

func fetchMetrics(client *http.Client, target string) (obs.Snapshot, error) {
	resp, err := client.Get(target + "/metricz")
	if err != nil {
		return obs.Snapshot{}, err
	}
	defer resp.Body.Close()
	var sn obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&sn); err != nil {
		return obs.Snapshot{}, err
	}
	return sn, nil
}

func d(ns int64) string { return time.Duration(ns).Round(time.Microsecond).String() }

func (r *report) table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "lbload: %d rps for %.0fs against %s (open loop)\n", r.TargetRPS, r.DurationSec, r.Target)
	fmt.Fprintf(&b, "  requests   %-7d ok %-7d failed %-5d sheds %-5d (429=%d 503=%d retries=%d)  achieved %.1f rps\n",
		r.Requests, r.OK, r.Failed, r.Sheds, r.Rejected429, r.Rejected503, r.Retries, r.AchievedRPS)
	fmt.Fprintf(&b, "  latency    p50=%-9s p90=%-9s p99=%-9s max=%-9s mean=%s\n",
		d(r.Latency.P50), d(r.Latency.P90), d(r.Latency.P99), d(r.Latency.Max), d(int64(r.Latency.Mean)))
	fmt.Fprintf(&b, "   ├ hit     p50=%-9s p99=%-9s (%d served from plan cache)\n",
		d(r.HitLatency.P50), d(r.HitLatency.P99), r.Cache.ClientHits)
	fmt.Fprintf(&b, "   └ miss    p50=%-9s p99=%-9s\n", d(r.MissLatency.P50), d(r.MissLatency.P99))
	fmt.Fprintf(&b, "  cache      hits %-6d misses %-6d hit-rate %.1f%%  coalesced %d\n",
		r.Cache.Hits, r.Cache.Misses, 100*r.Cache.HitRate, r.Cache.Coalesced)
	if r.Cluster != nil {
		fmt.Fprintf(&b, "  cluster    proxied %-5d failover-local %-4d plans-computed %-5d (unreachable targets: %d)\n",
			r.Cluster.Proxied, r.Cluster.FailoverLocal, r.Cluster.PlansComputed, r.Cluster.MetricsUnreachable)
	}
	return b.String()
}

// runSweep is experiment X8: serving throughput and latency as a
// function of worker-pool size and plan caching, on a fresh in-process
// server per cell.
func runSweep(rps int, duration time.Duration, seed uint64, specPool int, outPath, jsonPath string) {
	var b strings.Builder
	fmt.Fprintf(&b, "X8 — service throughput/latency vs worker-pool size and plan cache\n")
	fmt.Fprintf(&b, "open-loop %d rps per cell for %v, mix seed %d, spec pool %d\n\n", rps, duration, seed, specPool)
	fmt.Fprintf(&b, "| workers | cache | ok | failed | achieved rps | p50 | p99 | hit-rate |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|---|\n")
	type cell struct {
		Workers int  `json:"workers"`
		Cache   bool `json:"cache"`
		report
	}
	var cells []cell
	for _, w := range []int{1, 2, 4, 8} {
		for _, cached := range []bool{true, false} {
			cap := 1024
			if !cached {
				cap = -1
			}
			url, shutdown := startInProcess(w, cap)
			rep, err := runLoad([]string{url}, rps, duration, seed, specPool)
			shutdown()
			if err != nil {
				fmt.Fprintln(os.Stderr, "lbload sweep:", err)
				os.Exit(1)
			}
			onoff := "on"
			if !cached {
				onoff = "off"
			}
			fmt.Fprintf(&b, "| %d | %s | %d | %d | %.1f | %s | %s | %.1f%% |\n",
				w, onoff, rep.OK, rep.Failed, rep.AchievedRPS,
				d(rep.Latency.P50), d(rep.Latency.P99), 100*rep.Cache.HitRate)
			cells = append(cells, cell{Workers: w, Cache: cached, report: *rep})
		}
	}
	text := b.String()
	fmt.Print(text)
	writeFile(outPath, text)
	if jsonPath != "" {
		writeJSONSection(jsonPath, "sweep", cells)
	}
}

func writeFile(path, text string) {
	if path == "" {
		return
	}
	os.MkdirAll(filepath.Dir(path), 0o755)
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "lbload:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}

// knownSections are the keys of the sectioned BENCH_service.json
// envelope; anything else in an existing file (e.g. the legacy flat
// report) is dropped rather than carried along indefinitely.
var knownSections = map[string]bool{"load": true, "slo": true, "sweep": true, "cluster": true, "rebalance": true}

// writeJSONSection merges v into the sectioned JSON file at path under
// the given key, preserving the other known sections so the load smoke
// and the SLO study can update the same trajectory file independently.
func writeJSONSection(path, section string, v any) {
	out := make(map[string]json.RawMessage)
	if data, err := os.ReadFile(path); err == nil {
		var existing map[string]json.RawMessage
		if json.Unmarshal(data, &existing) == nil {
			for k, raw := range existing {
				if knownSections[k] {
					out[k] = raw
				}
			}
		}
	}
	raw, err := json.Marshal(v)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbload:", err)
		os.Exit(1)
	}
	out[section] = raw
	if dir := filepath.Dir(path); dir != "." {
		os.MkdirAll(dir, 0o755)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbload:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (section %q)\n", path, section)
}
