package main

// Experiment X11 — SLO-driven overload protection, tenant isolation and
// warm restarts (EXPERIMENTS.md). Three sub-studies against in-process
// servers:
//
//   overload  offered load at 2× measured capacity with a latency SLO:
//             the admission controller must shed the excess so that
//             admitted p99 stays within 1.5× the target while goodput
//             holds ≥ 80% of capacity.
//   tenants   one hog tenant offering 10× its share next to N polite
//             tenants: per-tenant token buckets + weighted-fair
//             queueing must keep polite goodput ≥ 90% of the hog-free
//             baseline.
//   restart   a warm server is snapshotted, shut down and restarted
//             mid-sweep: the restored cache must hold the hit rate
//             within 10 points of the pre-restart run.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bisectlb/internal/obs"
	"bisectlb/internal/service"
)

// sloStudy is the JSON section recorded under "slo" in
// BENCH_service.json.
type sloStudy struct {
	Seed            uint64         `json:"seed"`
	ComputeMeanNs   float64        `json:"compute_mean_ns"`
	CapacityRPS     float64        `json:"capacity_rps"`
	Overload        overloadResult `json:"overload"`
	Tenants         tenantResult   `json:"tenants"`
	Restart         restartResult  `json:"restart"`
	AllCriteriaPass bool           `json:"all_criteria_pass"`
}

type overloadResult struct {
	TargetP99Ns     int64   `json:"target_p99_ns"`
	OfferedRPS      int     `json:"offered_rps"`
	OK              int64   `json:"ok"`
	Shed429         int64   `json:"shed_429"`
	ShedSLO         int64   `json:"server_slo_shed"`
	ShedQueue       int64   `json:"server_queue_full"`
	Rejected503     int64   `json:"rejected_503"`
	GoodputRPS      float64 `json:"goodput_rps"`
	AdmittedP99     int64   `json:"admitted_p99_ns"`
	UncontrolledP99 int64   `json:"uncontrolled_p99_ns"`
	P99OverSLO      float64 `json:"p99_over_slo"`
	GoodputFrac     float64 `json:"goodput_over_capacity"`
	CriteriaPass    bool    `json:"criteria_pass"`
}

type tenantResult struct {
	PoliteTenants    int     `json:"polite_tenants"`
	PoliteRPS        int     `json:"polite_rps_each"`
	HogRPS           int     `json:"hog_rps"`
	TenantRate       float64 `json:"tenant_rate"`
	BaselinePoliteOK int64   `json:"baseline_polite_ok"`
	PoliteOK         int64   `json:"polite_ok_with_hog"`
	HogOK            int64   `json:"hog_ok"`
	PoliteRetention  float64 `json:"polite_retention"`
	CriteriaPass     bool    `json:"criteria_pass"`
}

type restartResult struct {
	PreHitRate    float64 `json:"pre_hit_rate"`
	SnapshotPlans int     `json:"snapshot_plans"`
	RestoredPlans int     `json:"restored_plans"`
	PostHitRate   float64 `json:"post_hit_rate"`
	HitRateDelta  float64 `json:"hit_rate_delta"`
	CriteriaPass  bool    `json:"criteria_pass"`
}

// Counter names the study reads from /metricz (mirrors internal/service).
const (
	serviceRejectedShed      = "service.rejected_slo_shed"
	serviceRejectedQueueFull = "service.rejected_queue_full"
)

// shot is one generated request: the body plus the tenant header value
// (empty = no header).
type shot struct {
	tenant string
	body   string
}

// driveStats aggregates one open-loop run of the slo driver. Latencies
// of admitted (200) requests are kept exactly — the study's acceptance
// criteria are too tight for the power-of-two bucket quantiles of the
// obs histograms.
type driveStats struct {
	sent, ok, r429, r503, failed atomic.Int64
	clientHits                   atomic.Int64
	okByTenant                   sync.Map // tenant → *atomic.Int64

	mu     sync.Mutex
	okLats []int64
}

func (s *driveStats) okFor(tenant string) int64 {
	v, ok := s.okByTenant.Load(tenant)
	if !ok {
		return 0
	}
	return v.(*atomic.Int64).Load()
}

// okP99 is the exact 99th-percentile latency of admitted requests.
func (s *driveStats) okP99() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.okLats) == 0 {
		return 0
	}
	lats := append([]int64(nil), s.okLats...)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := (99*len(lats) + 99) / 100 // ceil(0.99·n)
	if idx > len(lats) {
		idx = len(lats)
	}
	return lats[idx-1]
}

// drive fires rps×(warmup+duration) requests open-loop, drawing shot i
// from next. Requests started during the warmup period are sent but not
// recorded: warmup covers the controller's convergence transient (an
// empty window carries no evidence to steer on), so the stats describe
// steady state. Only 200 latencies are recorded — the study's question
// is what admitted requests experienced.
func drive(client *http.Client, target string, rps int, warmup, duration time.Duration, next func(i int) shot) *driveStats {
	st := &driveStats{}
	total := int(float64(rps) * (warmup + duration).Seconds())
	interval := time.Second / time.Duration(rps)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	cutoff := time.Now().Add(warmup)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		<-ticker.C
		sh := next(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			record := !t0.Before(cutoff)
			if record {
				st.sent.Add(1)
			}
			req, err := http.NewRequest(http.MethodPost, target+"/v1/balance", strings.NewReader(sh.body))
			if err != nil {
				if record {
					st.failed.Add(1)
				}
				return
			}
			req.Header.Set("Content-Type", "application/json")
			if sh.tenant != "" {
				req.Header.Set("X-Lbserve-Tenant", sh.tenant)
			}
			resp, err := client.Do(req)
			if err != nil {
				if record {
					st.failed.Add(1)
				}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if !record {
				return
			}
			switch resp.StatusCode {
			case http.StatusOK:
				st.ok.Add(1)
				lat := time.Since(t0).Nanoseconds()
				st.mu.Lock()
				st.okLats = append(st.okLats, lat)
				st.mu.Unlock()
				if resp.Header.Get("X-Lbserve-Cache") == "hit" {
					st.clientHits.Add(1)
				}
				v, _ := st.okByTenant.LoadOrStore(sh.tenant, new(atomic.Int64))
				v.(*atomic.Int64).Add(1)
			case http.StatusTooManyRequests:
				st.r429.Add(1)
			case http.StatusServiceUnavailable:
				st.r503.Add(1)
			default:
				st.failed.Add(1)
			}
		}()
	}
	wg.Wait()
	return st
}

func sloClient() *http.Client {
	return &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        512,
			MaxIdleConnsPerHost: 512,
		},
	}
}

// overloadBody is the compute-heavy request the overload and calibration
// phases use; distinct seeds defeat any caching so every admission costs
// a full plan. n is large so one request costs tens of milliseconds:
// the study's latencies are measured client-side, and the service time
// must dwarf the scheduling noise of the co-located generator.
func overloadBody(seed int) string {
	return fmt.Sprintf(
		`{"spec":{"family":"uniform","lo":0.1,"hi":0.5,"seed":%d},"n":65536,"algorithm":"HF"}`, seed)
}

// calibrate measures the mean end-to-end service time of the overload
// body — compute plus response encoding, the real cost of one admitted
// request — by timing sequential closed-loop requests against an
// uncached single worker. Capacity is the implied plans/sec of `workers`
// workers.
func calibrate(client *http.Client, workers int) (meanNs float64, capacityRPS float64, err error) {
	srv := service.New(service.Config{Workers: 1, CacheCapacity: -1})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	defer shutdownServer(srv)
	target := "http://" + addr.String()
	const warm, timed = 5, 30
	var start time.Time
	for i := 0; i < warm+timed; i++ {
		if i == warm {
			start = time.Now()
		}
		resp, err := client.Post(target+"/v1/balance", "application/json",
			strings.NewReader(overloadBody(i)))
		if err != nil {
			return 0, 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, 0, fmt.Errorf("calibration request %d: status %d", i, resp.StatusCode)
		}
	}
	meanNs = float64(time.Since(start).Nanoseconds()) / timed
	return meanNs, float64(workers) * 1e9 / meanNs, nil
}

func shutdownServer(srv *service.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
}

// runSLO is experiment X11. It writes the human-readable study to
// outPath and returns the JSON section.
func runSLO(seed uint64, duration time.Duration, outPath string) (*sloStudy, bool) {
	client := sloClient()
	// One worker: the study boxes share CPUs with the generator, and a
	// single compute lane makes capacity, queueing delay and the SLO
	// target all functions of one calibrated number.
	const workers = 1
	var b strings.Builder
	fmt.Fprintf(&b, "X11 — SLO-driven overload protection, tenant isolation, warm restarts\n")
	fmt.Fprintf(&b, "in-process servers, %d workers, mix seed %d, %v per phase\n\n", workers, seed, duration)

	meanNs, capacity, err := calibrate(client, workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbload slo: calibration:", err)
		os.Exit(1)
	}
	fmt.Fprintf(&b, "calibration: mean service time %.2fms → capacity ≈ %.0f plans/s on %d worker(s)\n\n",
		meanNs/1e6, capacity, workers)

	study := &sloStudy{Seed: seed, ComputeMeanNs: meanNs, CapacityRPS: capacity}

	// ── overload ─────────────────────────────────────────────────────
	// Offer 2× capacity with a target p99 of 8× the mean service time,
	// rounded up to the bucket bound the controller actually enforces.
	// Admission is a co-design of two mechanisms and the study exercises
	// both. The bounded queue is sized to ~0.85 targets of calibrated
	// service time, so its queue_full backstop alone caps the wait near
	// the target even when the co-located generator inflates service
	// times; the SLO controller sheds on top whenever the windowed p99
	// of what was actually admitted breaches the target. Ticks are fine
	// (25ms) under a 1.5s window: the window reliably holds the minimum
	// sample count at the admitted rate, while additive recovery at
	// 2/s refills the queue quickly after a shed episode instead of
	// idling the worker. A contrast run with a deep queue and no target
	// shows what the pair prevents. Stats start after a warmup that
	// covers the controller's convergence — its window holds no
	// evidence until the first admitted requests complete.
	target := time.Duration(obs.QuantizeUp(int64(8 * meanNs)))
	queueDepth := int(0.85 * float64(target) / meanNs)
	offered := int(2 * capacity)
	if offered < 20 {
		offered = 20
	}
	const overloadWarmup = 1500 * time.Millisecond
	overloadRun := func(cfg service.Config) (*driveStats, obs.Snapshot) {
		srv := service.New(cfg)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbload slo:", err)
			os.Exit(1)
		}
		st := drive(client, "http://"+addr.String(), offered, overloadWarmup, duration, func(i int) shot {
			return shot{body: overloadBody(i)}
		})
		sn, _ := fetchMetrics(client, "http://"+addr.String())
		shutdownServer(srv)
		return st, sn
	}
	// Contrast: a deep queue and no SLO target. Every request that fits
	// the queue is admitted, and the backlog pushes the admitted p99 to
	// many multiples of the target.
	stU, _ := overloadRun(service.Config{
		Workers:       workers,
		QueueDepth:    8 * queueDepth,
		CacheCapacity: -1,
	})
	uncontrolledP99 := stU.okP99()
	// Controlled: bounded queue + SLO controller.
	st, sn := overloadRun(service.Config{
		Workers:       workers,
		QueueDepth:    queueDepth,
		CacheCapacity: -1,
		TargetP99:     target,
		SLOTick:       25 * time.Millisecond,
		SLOEpochs:     60,
	})
	// Shed composition from the server's own counters (whole run,
	// including warmup): slo_shed > 0 is what distinguishes the
	// controller from the queue_full backstop.
	shedSLO := sn.Counters[serviceRejectedShed]
	shedQueue := sn.Counters[serviceRejectedQueueFull]
	p99 := st.okP99()
	goodput := float64(st.ok.Load()) / duration.Seconds()
	ov := overloadResult{
		TargetP99Ns:     int64(target),
		OfferedRPS:      offered,
		OK:              st.ok.Load(),
		Shed429:         st.r429.Load(),
		ShedSLO:         shedSLO,
		ShedQueue:       shedQueue,
		Rejected503:     st.r503.Load(),
		GoodputRPS:      goodput,
		AdmittedP99:     p99,
		UncontrolledP99: uncontrolledP99,
		P99OverSLO:      float64(p99) / float64(target),
		GoodputFrac:     goodput / capacity,
	}
	ov.CriteriaPass = ov.P99OverSLO <= 1.5 && ov.GoodputFrac >= 0.8
	study.Overload = ov
	fmt.Fprintf(&b, "overload: offered %d rps (2× capacity), queue %d deep, target p99 %v\n",
		offered, queueDepth, target.Round(time.Millisecond))
	fmt.Fprintf(&b, "  uncontrolled contrast (queue %d, no target): admitted p99 %v = %.2f× target\n",
		8*queueDepth, time.Duration(uncontrolledP99).Round(time.Microsecond),
		float64(uncontrolledP99)/float64(target))
	fmt.Fprintf(&b, "  ok %d  shed(429) %d  503 %d  goodput %.0f rps (%.0f%% of capacity)\n",
		ov.OK, ov.Shed429, ov.Rejected503, goodput, 100*ov.GoodputFrac)
	fmt.Fprintf(&b, "  server sheds over the whole run: slo_shed %d, queue_full %d\n",
		shedSLO, shedQueue)
	fmt.Fprintf(&b, "  admitted p99 %v = %.2f× target  →  %s\n\n",
		time.Duration(p99).Round(time.Microsecond), ov.P99OverSLO, passFail(ov.CriteriaPass))

	// ── tenant isolation ─────────────────────────────────────────────
	// N polite tenants inside their rate next to one hog at 10× its
	// share. The polite baseline is the same polite traffic with no hog.
	const (
		politeN    = 4
		politeRPS  = 30
		hogRPS     = 300
		tenantRate = 60.0
	)
	tenantBody := func(i int) string {
		return fmt.Sprintf(
			`{"spec":{"family":"uniform","lo":0.1,"hi":0.5,"seed":%d},"n":1024,"algorithm":"HF"}`, i)
	}
	newTenantServer := func() (*service.Server, string) {
		srv := service.New(service.Config{
			Workers:          workers,
			CacheCapacity:    -1,
			TenantRate:       tenantRate,
			TenantQueueShare: 0.5,
		})
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbload slo:", err)
			os.Exit(1)
		}
		return srv, "http://" + addr.String()
	}
	// Baseline: polite tenants only.
	srv, url := newTenantServer()
	base := drive(client, url, politeN*politeRPS, 0, duration, func(i int) shot {
		return shot{tenant: fmt.Sprintf("polite%d", i%politeN), body: tenantBody(i)}
	})
	shutdownServer(srv)
	// With the hog: interleave so each second carries politeN×politeRPS
	// polite requests and hogRPS hog requests.
	srv, url = newTenantServer()
	totalRPS := politeN*politeRPS + hogRPS
	hogEvery := float64(totalRPS) / float64(hogRPS)
	withHog := drive(client, url, totalRPS, 0, duration, func(i int) shot {
		if int(float64(i)/hogEvery) != int(float64(i+1)/hogEvery) {
			return shot{tenant: "hog", body: tenantBody(i)}
		}
		return shot{tenant: fmt.Sprintf("polite%d", i%politeN), body: tenantBody(i)}
	})
	shutdownServer(srv)
	basePolite := base.ok.Load()
	politeOK := int64(0)
	for i := 0; i < politeN; i++ {
		politeOK += withHog.okFor(fmt.Sprintf("polite%d", i))
	}
	tr := tenantResult{
		PoliteTenants:    politeN,
		PoliteRPS:        politeRPS,
		HogRPS:           hogRPS,
		TenantRate:       tenantRate,
		BaselinePoliteOK: basePolite,
		PoliteOK:         politeOK,
		HogOK:            withHog.okFor("hog"),
	}
	if basePolite > 0 {
		tr.PoliteRetention = float64(politeOK) / float64(basePolite)
	}
	tr.CriteriaPass = tr.PoliteRetention >= 0.9
	study.Tenants = tr
	fmt.Fprintf(&b, "tenants: %d polite × %d rps + hog at %d rps (rate limit %.0f/s, queue share 0.5)\n",
		politeN, politeRPS, hogRPS, tenantRate)
	fmt.Fprintf(&b, "  polite ok %d (baseline %d) → retention %.1f%%  hog ok %d (capped by bucket)\n",
		politeOK, basePolite, 100*tr.PoliteRetention, tr.HogOK)
	fmt.Fprintf(&b, "  →  %s\n\n", passFail(tr.CriteriaPass))

	// ── warm restart ─────────────────────────────────────────────────
	// Warm a cached server with a bounded spec pool, measure the hit
	// rate, snapshot + shut down mid-sweep, restore into a fresh server
	// and replay the same mix: the hit rate must survive the restart.
	snapPath := filepath.Join(os.TempDir(), fmt.Sprintf("lbload-slo-%d.snapshot", os.Getpid()))
	defer os.Remove(snapPath)
	mixFor := func() *mix { return newMix(seed, 8) }
	restartCfg := service.Config{Workers: workers, CacheCapacity: 1024}

	srv = service.New(restartCfg)
	addrR, err := srv.Start("127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbload slo:", err)
		os.Exit(1)
	}
	m := mixFor()
	pre := drive(client, "http://"+addrR.String(), 200, 0, duration, func(i int) shot {
		return shot{body: m.bodies[i%len(m.bodies)]}
	})
	shutdownServer(srv)
	saved, err := srv.SaveCacheSnapshot(snapPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbload slo: snapshot:", err)
		os.Exit(1)
	}

	srv2 := service.New(restartCfg)
	restored, err := srv2.LoadCacheSnapshot(snapPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbload slo: restore:", err)
		os.Exit(1)
	}
	addrR2, err := srv2.Start("127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbload slo:", err)
		os.Exit(1)
	}
	m2 := mixFor()
	post := drive(client, "http://"+addrR2.String(), 200, 0, duration, func(i int) shot {
		return shot{body: m2.bodies[i%len(m2.bodies)]}
	})
	shutdownServer(srv2)

	preHit := rate(pre.clientHits.Load(), pre.ok.Load())
	postHit := rate(post.clientHits.Load(), post.ok.Load())
	rr := restartResult{
		PreHitRate:    preHit,
		SnapshotPlans: saved,
		RestoredPlans: restored,
		PostHitRate:   postHit,
		HitRateDelta:  postHit - preHit,
	}
	rr.CriteriaPass = rr.HitRateDelta >= -0.10
	study.Restart = rr
	fmt.Fprintf(&b, "restart: hit rate %.1f%% → snapshot %d plans → restart → hit rate %.1f%% (Δ %+.1f points)\n",
		100*preHit, saved, 100*postHit, 100*rr.HitRateDelta)
	fmt.Fprintf(&b, "  →  %s\n", passFail(rr.CriteriaPass))

	study.AllCriteriaPass = ov.CriteriaPass && tr.CriteriaPass && rr.CriteriaPass
	text := b.String()
	fmt.Print(text)
	writeFile(outPath, text)
	return study, study.AllCriteriaPass
}

func rate(hits, total int64) float64 {
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
