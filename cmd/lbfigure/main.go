// Command lbfigure regenerates the paper's Figure 5: the average
// load-balance ratio of Algorithms BA, BA-HF and HF against log2 N for
// α̂ ~ U[0.1, 0.5] and κ = 1.0, rendered as an ASCII chart with a numeric
// companion table, followed by an automatic check of the qualitative
// findings the paper reports for the figure.
package main

import (
	"flag"
	"fmt"
	"os"

	"bisectlb/internal/experiments"
)

func main() {
	var (
		trials = flag.Int("trials", 1000, "trials per processor count")
		maxLog = flag.Int("maxlog", 16, "largest log2 N (paper: 20)")
		seed   = flag.Uint64("seed", 1999, "random seed")
		csv    = flag.String("csv", "", "also write the series to this CSV file")
	)
	flag.Parse()

	cfg := experiments.Figure5Config(*trials, *maxLog, *seed)
	rows, err := experiments.RunTriple(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbfigure:", err)
		os.Exit(1)
	}
	if err := experiments.RenderFigure5(os.Stdout, cfg, rows); err != nil {
		fmt.Fprintln(os.Stderr, "lbfigure:", err)
		os.Exit(1)
	}
	fmt.Println()
	if violations := experiments.CheckFigure5Shape(rows); len(violations) == 0 {
		fmt.Println("shape check: PASS — HF < BA-HF < BA throughout, spreads within the paper's bounds")
	} else {
		fmt.Println("shape check: FAIL")
		for _, v := range violations {
			fmt.Println("  -", v)
		}
		os.Exit(1)
	}
	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbfigure:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := experiments.WriteTripleCSV(f, rows); err != nil {
			fmt.Fprintln(os.Stderr, "lbfigure:", err)
			os.Exit(1)
		}
		fmt.Printf("CSV written to %s\n", *csv)
	}
}
