// Command lbtable regenerates the paper's Table 1: worst-case upper bounds
// and observed min/avg/max load-balance ratios of Algorithms BA, BA-HF and
// HF under the stochastic model α̂ ~ U[lo, hi].
//
// The paper's exact configuration is -lo 0.01 -hi 0.5 -kappa 1 -trials 1000
// -maxlog 20 -flat; the defaults trade the flat 1000-trial sweep for a
// scaled one that finishes in minutes on a laptop.
package main

import (
	"flag"
	"fmt"
	"os"

	"bisectlb/internal/artifact"
	"bisectlb/internal/experiments"
)

func main() {
	var (
		lo     = flag.Float64("lo", 0.01, "lower bound of the α̂ interval")
		hi     = flag.Float64("hi", 0.5, "upper bound of the α̂ interval")
		kappa  = flag.Float64("kappa", 1.0, "BA-HF threshold parameter κ")
		trials = flag.Int("trials", 1000, "trials per processor count")
		minLog = flag.Int("minlog", 5, "smallest log2 N")
		maxLog = flag.Int("maxlog", 16, "largest log2 N (paper: 20)")
		seed   = flag.Uint64("seed", 1999, "random seed")
		flat   = flag.Bool("flat", false, "disable trial scaling above 2^14 (paper-exact, slow)")
		csv    = flag.String("csv", "", "also write results to this CSV file")
		jsonP  = flag.String("json", "", "also archive results (with configuration) to this JSON file")
	)
	flag.Parse()

	cfg := experiments.TripleConfig{
		Lo: *lo, Hi: *hi, Kappa: *kappa,
		Trials: *trials, Seed: *seed,
		Ns:          experiments.PowersOfTwo(*minLog, *maxLog),
		ScaleTrials: !*flat,
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "lbtable:", err)
		os.Exit(2)
	}
	rows, err := experiments.RunTriple(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbtable:", err)
		os.Exit(1)
	}
	if err := experiments.RenderTable1(os.Stdout, cfg, rows); err != nil {
		fmt.Fprintln(os.Stderr, "lbtable:", err)
		os.Exit(1)
	}
	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbtable:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := experiments.WriteTripleCSV(f, rows); err != nil {
			fmt.Fprintln(os.Stderr, "lbtable:", err)
			os.Exit(1)
		}
		fmt.Printf("\nCSV written to %s\n", *csv)
	}
	if *jsonP != "" {
		f, err := os.Create(*jsonP)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbtable:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := artifact.WriteTable(f, cfg, rows); err != nil {
			fmt.Fprintln(os.Stderr, "lbtable:", err)
			os.Exit(1)
		}
		fmt.Printf("JSON archived to %s\n", *jsonP)
	}
}
