// Command lbdist demonstrates Algorithm BA as a real message-passing
// system: K nodes communicating over loopback TCP split a problem across N
// virtual processors using the paper's range-based management, with a
// coordinator collecting the parts and verifying the outcome against the
// in-process algorithm. In a production deployment each node would be its
// own OS process on its own host; the wiring is identical.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"bisectlb/internal/bisect"
	"bisectlb/internal/core"
	"bisectlb/internal/dist"
	"bisectlb/internal/obs"
)

func main() {
	var (
		n         = flag.Int("n", 64, "virtual processors")
		k         = flag.Int("nodes", 4, "cluster nodes")
		lo        = flag.Float64("lo", 0.1, "lower α̂ bound")
		hi        = flag.Float64("hi", 0.5, "upper α̂ bound")
		seed      = flag.Uint64("seed", 1999, "instance seed")
		timeout   = flag.Duration("timeout", 30*time.Second, "run deadline")
		metrics   = flag.Bool("metrics", false, "dump node-local metric registries as JSON on exit")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (empty disables)")
	)
	flag.Parse()

	if bound, err := obs.StartPprof(*pprofAddr); err != nil {
		fmt.Fprintln(os.Stderr, "lbdist: pprof:", err)
		os.Exit(1)
	} else if bound != "" {
		fmt.Printf("pprof: http://%s/debug/pprof/\n", bound)
	}

	cl, err := dist.StartCluster(*n, *k)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbdist:", err)
		os.Exit(1)
	}
	defer cl.Close()
	fmt.Printf("cluster: %d nodes on loopback TCP, %d virtual processors\n", *k, *n)
	for i, nd := range cl.Nodes {
		segLo, segHi := i**n / *k, (i+1)**n / *k
		fmt.Printf("  node %d at %s owns processors [%d, %d)\n", i, nd.Addr(), segLo, segHi)
	}

	problem, err := bisect.NewSynthetic(1, *lo, *hi, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbdist:", err)
		os.Exit(2)
	}
	root, err := dist.Encode(problem)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbdist:", err)
		os.Exit(1)
	}
	addrs := make([]string, len(cl.Nodes))
	for i, nd := range cl.Nodes {
		addrs[i] = nd.Addr()
	}

	start := time.Now()
	res, err := cl.Coord.Run(root, *n, addrs, *timeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbdist:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	perNode := make([]int, *k)
	for _, pt := range res.Parts {
		perNode[pt.FromNode]++
	}
	fmt.Printf("\ndistributed BA finished in %v: %d parts, ratio %.4f, %d parts crossed node boundaries\n",
		elapsed.Round(time.Millisecond), len(res.Parts), res.Ratio, res.CrossNodeParts)
	for i, c := range perNode {
		fmt.Printf("  node %d finished %d parts\n", i, c)
	}

	local, err := core.BA(bisect.MustSynthetic(1, *lo, *hi, *seed), *n, core.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbdist:", err)
		os.Exit(1)
	}
	match := len(res.Parts) == len(local.Parts) && res.Ratio == local.Ratio
	fmt.Printf("\nidentical to in-process BA: %v (local ratio %.4f)\n", match, local.Ratio)

	if *metrics {
		// One snapshot per endpoint, keyed like a fleet dashboard would.
		snaps := map[string]obs.Snapshot{"coord": cl.Coord.Metrics().Snapshot()}
		for i, nd := range cl.Nodes {
			snaps[fmt.Sprintf("node%d", i)] = nd.Metrics().Snapshot()
		}
		fmt.Printf("\nmetrics:\n")
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snaps); err != nil {
			fmt.Fprintln(os.Stderr, "lbdist:", err)
			os.Exit(1)
		}
	}

	if !match {
		os.Exit(1)
	}
}
