package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestUnknownExperimentExitsTwo re-executes the test binary as lbsim with
// a misspelled -exp and checks the contract of the early validation: exit
// code 2, a diagnostic naming the bad value, and no study output — the
// typo is rejected before any sweep starts.
func TestUnknownExperimentExitsTwo(t *testing.T) {
	if os.Getenv("LBSIM_RUN_MAIN") == "1" {
		os.Args = []string{"lbsim", "-exp", "kapa"} // typo for "kappa"
		main()
		return
	}
	start := time.Now()
	cmd := exec.Command(os.Args[0], "-test.run", "TestUnknownExperimentExitsTwo")
	cmd.Env = append(os.Environ(), "LBSIM_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit error, got %v (output %q)", err, out)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Fatalf("exit code = %d, want 2 (output %q)", code, out)
	}
	if !strings.Contains(string(out), `unknown experiment "kapa"`) {
		t.Fatalf("diagnostic missing from output %q", out)
	}
	if strings.Contains(string(out), "study") {
		t.Fatalf("a study ran before validation: %q", out)
	}
	// The default trials value would keep a sweep busy for minutes; a
	// rejected typo must return essentially immediately.
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("validation took %v — work ran before the exit", el)
	}
}
