// Command lbsim runs the remaining simulation studies of the paper's
// Section 4 — the κ-influence study, the variance study and the
// non-power-of-two processor-count study — plus studies this
// reproduction adds: the weight-estimation robustness sweep, the BA
// split-rule quality ablation, the chaos study of the fault-tolerant
// distributed runtime, and the X15 real-instance study (graph and
// spatial bisectors checked against their measured r_α̂ bounds, written
// to results/real.txt and the {real} section of BENCH_core.json).
// -exp all runs every study.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"bisectlb/internal/bench"
	"bisectlb/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "study to run: kappa | variance | oddn | robustness | splitrule | dynamic | endtoend | chaos | real | all")
		trials   = flag.Int("trials", 1000, "trials per configuration")
		maxLog   = flag.Int("maxlog", 14, "largest log2 N for the sweeps")
		seed     = flag.Uint64("seed", 1999, "random seed")
		realOut  = flag.String("real-out", "results/real.txt", "X15 table file (empty disables)")
		realJSON = flag.String("real-json", "BENCH_core.json", "suite file whose {real} section the X15 study rewrites, timing cells preserved (empty disables)")
	)
	flag.Parse()

	// Reject unknown experiment names before any study runs, so a typo
	// exits immediately instead of after minutes of sweeps.
	switch *exp {
	case "all", "kappa", "variance", "oddn", "robustness", "splitrule", "endtoend", "dynamic", "chaos", "real":
	default:
		fmt.Fprintf(os.Stderr,
			"lbsim: unknown experiment %q (want kappa, variance, oddn, robustness, splitrule, endtoend, dynamic, chaos, real or all)\n", *exp)
		os.Exit(2)
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "lbsim %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("kappa", func() error {
		res, err := experiments.RunKappaStudy(experiments.DefaultKappaConfig(*trials, *maxLog, *seed))
		if err != nil {
			return err
		}
		return experiments.RenderKappaStudy(os.Stdout, res)
	})
	run("variance", func() error {
		rows, err := experiments.RunVarianceStudy(experiments.DefaultVarianceStudy(*trials, *maxLog, *seed))
		if err != nil {
			return err
		}
		return experiments.RenderVarianceStudy(os.Stdout, rows)
	})
	run("oddn", func() error {
		cfg := experiments.DefaultOddNStudy(*trials, *seed)
		rows, err := experiments.RunOddNStudy(cfg)
		if err != nil {
			return err
		}
		return experiments.RenderOddNStudy(os.Stdout, cfg, rows)
	})
	run("robustness", func() error {
		cfg := experiments.DefaultRobustnessStudy(*trials, *seed)
		rows, err := experiments.RunRobustnessStudy(cfg)
		if err != nil {
			return err
		}
		return experiments.RenderRobustnessStudy(os.Stdout, cfg, rows)
	})
	run("splitrule", func() error {
		cfg := experiments.DefaultSplitRuleAblation(*trials, *maxLog, *seed)
		rows, err := experiments.RunSplitRuleAblation(cfg)
		if err != nil {
			return err
		}
		return experiments.RenderSplitRuleAblation(os.Stdout, cfg, rows)
	})
	run("dynamic", func() error {
		cfg := experiments.DefaultDynamicStudy(*trials/10+1, *seed)
		rows, err := experiments.RunDynamicStudy(cfg)
		if err != nil {
			return err
		}
		return experiments.RenderDynamicStudy(os.Stdout, cfg, rows)
	})
	run("endtoend", func() error {
		cfg := experiments.DefaultEndToEndStudy(*trials, *seed)
		rows, err := experiments.RunEndToEndStudy(cfg)
		if err != nil {
			return err
		}
		if err := experiments.RenderEndToEndStudy(os.Stdout, cfg, rows); err != nil {
			return err
		}
		reg, err := experiments.RunExecutorProbe(cfg)
		if err != nil {
			return err
		}
		return experiments.RenderExecutorAppendix(os.Stdout, cfg, reg)
	})
	run("chaos", func() error {
		// Each chaos trial is a full TCP cluster run; scale the count down.
		cfg := experiments.DefaultChaosStudy(*trials/300+1, *seed)
		rows, err := experiments.RunChaosStudy(cfg)
		if err != nil {
			return err
		}
		return experiments.RenderChaosStudy(os.Stdout, cfg, rows)
	})
	run("real", func() error {
		cfg := experiments.DefaultRealStudy(*seed)
		rows, err := experiments.RunRealStudy(cfg)
		if err != nil {
			return err
		}
		if err := experiments.RenderRealStudy(os.Stdout, cfg, rows); err != nil {
			return err
		}
		if *realOut != "" {
			if err := writeTo(*realOut, func(f *os.File) error {
				return experiments.RenderRealStudy(f, cfg, rows)
			}); err != nil {
				return err
			}
		}
		if *realJSON != "" {
			// Merge, don't overwrite: the timing cells belong to lbbench;
			// this study only owns the {real} section.
			s, err := bench.LoadSuite(*realJSON)
			if err != nil {
				return fmt.Errorf("cannot merge {real} section: %w", err)
			}
			s.Real = rows
			if err := writeTo(*realJSON, func(f *os.File) error { return s.WriteJSON(f) }); err != nil {
				return err
			}
		}
		return nil
	})
}

// writeTo renders into path, creating parent directories as needed.
func writeTo(path string, render func(*os.File) error) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := render(f); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "lbsim: wrote", path)
	return nil
}
