// Command lbsim runs the remaining simulation studies of the paper's
// Section 4 — the κ-influence study, the variance study and the
// non-power-of-two processor-count study — plus studies this
// reproduction adds: the weight-estimation robustness sweep, the BA
// split-rule quality ablation and the chaos study of the fault-tolerant
// distributed runtime. -exp all runs every study.
package main

import (
	"flag"
	"fmt"
	"os"

	"bisectlb/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "study to run: kappa | variance | oddn | robustness | splitrule | dynamic | endtoend | chaos | all")
		trials = flag.Int("trials", 1000, "trials per configuration")
		maxLog = flag.Int("maxlog", 14, "largest log2 N for the sweeps")
		seed   = flag.Uint64("seed", 1999, "random seed")
	)
	flag.Parse()

	// Reject unknown experiment names before any study runs, so a typo
	// exits immediately instead of after minutes of sweeps.
	switch *exp {
	case "all", "kappa", "variance", "oddn", "robustness", "splitrule", "endtoend", "dynamic", "chaos":
	default:
		fmt.Fprintf(os.Stderr,
			"lbsim: unknown experiment %q (want kappa, variance, oddn, robustness, splitrule, endtoend, dynamic, chaos or all)\n", *exp)
		os.Exit(2)
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "lbsim %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("kappa", func() error {
		res, err := experiments.RunKappaStudy(experiments.DefaultKappaConfig(*trials, *maxLog, *seed))
		if err != nil {
			return err
		}
		return experiments.RenderKappaStudy(os.Stdout, res)
	})
	run("variance", func() error {
		rows, err := experiments.RunVarianceStudy(experiments.DefaultVarianceStudy(*trials, *maxLog, *seed))
		if err != nil {
			return err
		}
		return experiments.RenderVarianceStudy(os.Stdout, rows)
	})
	run("oddn", func() error {
		cfg := experiments.DefaultOddNStudy(*trials, *seed)
		rows, err := experiments.RunOddNStudy(cfg)
		if err != nil {
			return err
		}
		return experiments.RenderOddNStudy(os.Stdout, cfg, rows)
	})
	run("robustness", func() error {
		cfg := experiments.DefaultRobustnessStudy(*trials, *seed)
		rows, err := experiments.RunRobustnessStudy(cfg)
		if err != nil {
			return err
		}
		return experiments.RenderRobustnessStudy(os.Stdout, cfg, rows)
	})
	run("splitrule", func() error {
		cfg := experiments.DefaultSplitRuleAblation(*trials, *maxLog, *seed)
		rows, err := experiments.RunSplitRuleAblation(cfg)
		if err != nil {
			return err
		}
		return experiments.RenderSplitRuleAblation(os.Stdout, cfg, rows)
	})
	run("dynamic", func() error {
		cfg := experiments.DefaultDynamicStudy(*trials/10+1, *seed)
		rows, err := experiments.RunDynamicStudy(cfg)
		if err != nil {
			return err
		}
		return experiments.RenderDynamicStudy(os.Stdout, cfg, rows)
	})
	run("endtoend", func() error {
		cfg := experiments.DefaultEndToEndStudy(*trials, *seed)
		rows, err := experiments.RunEndToEndStudy(cfg)
		if err != nil {
			return err
		}
		if err := experiments.RenderEndToEndStudy(os.Stdout, cfg, rows); err != nil {
			return err
		}
		reg, err := experiments.RunExecutorProbe(cfg)
		if err != nil {
			return err
		}
		return experiments.RenderExecutorAppendix(os.Stdout, cfg, reg)
	})
	run("chaos", func() error {
		// Each chaos trial is a full TCP cluster run; scale the count down.
		cfg := experiments.DefaultChaosStudy(*trials/300+1, *seed)
		rows, err := experiments.RunChaosStudy(cfg)
		if err != nil {
			return err
		}
		return experiments.RenderChaosStudy(os.Stdout, cfg, rows)
	})
}
