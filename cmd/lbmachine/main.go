// Command lbmachine runs the machine-model study backing Section 3's
// running-time and communication claims: makespan, message and
// global-operation counts of HF, BA, BA-HF and the three PHF phase-one
// variants on the simulated parallel machine (bisect=1, send=1,
// global op=⌈log2 N⌉ time units).
//
// With -n it additionally prints a single-run detail comparison at that
// processor count.
package main

import (
	"flag"
	"fmt"
	"os"

	"bisectlb/internal/bisect"
	"bisectlb/internal/experiments"
	"bisectlb/internal/machine"
)

func main() {
	var (
		trials = flag.Int("trials", 50, "trials per processor count")
		maxLog = flag.Int("maxlog", 14, "largest log2 N for the sweep")
		alpha  = flag.Float64("alpha", 0.1, "declared class parameter α")
		kappa  = flag.Float64("kappa", 1.0, "BA-HF threshold parameter κ")
		seed   = flag.Uint64("seed", 1999, "random seed")
		nFlag  = flag.Int("n", 0, "if > 0, also print a single-run detail at this N")
		topoN  = flag.Int("topology", 0, "if > 0, also run the interconnect-topology study at this N")
	)
	flag.Parse()

	cfg := experiments.DefaultMachineStudy(*trials, *maxLog, *seed)
	cfg.Alpha = *alpha
	cfg.Lo = *alpha
	cfg.Kappa = *kappa
	rows, err := experiments.RunMachineStudy(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbmachine:", err)
		os.Exit(1)
	}
	if err := experiments.RenderMachineStudy(os.Stdout, cfg, rows); err != nil {
		fmt.Fprintln(os.Stderr, "lbmachine:", err)
		os.Exit(1)
	}

	if *nFlag > 0 {
		fmt.Printf("\nSingle-run detail at N = %d (seed %d):\n", *nFlag, *seed)
		mk := func(name string, m *machine.Metrics, err error) {
			if err != nil {
				fmt.Fprintln(os.Stderr, "lbmachine:", err)
				os.Exit(1)
			}
			fmt.Printf("  %-14s makespan=%-8d messages=%-8d mgr=%-6d globalOps=%-5d ratio=%.4f",
				name, m.Makespan, m.Messages, m.ManagerMessages, m.GlobalOps, m.Ratio)
			if m.Phase1Time > 0 || m.Phase2Time > 0 {
				fmt.Printf("  (phase1=%d phase2=%d iters=%d)",
					m.Phase1Time, m.Phase2Time, m.Phase2Iterations)
			}
			fmt.Println()
		}
		p := func() bisect.Problem { return bisect.MustSynthetic(1, cfg.Lo, cfg.Hi, *seed) }
		m, err := machine.RunHF(p(), *nFlag)
		mk("HF", m, err)
		m, err = machine.RunBA(p(), *nFlag)
		mk("BA", m, err)
		m, err = machine.RunBAHF(p(), *nFlag, *alpha, *kappa)
		mk("BA-HF", m, err)
		for _, mode := range []machine.Phase1Mode{machine.Phase1Oracle, machine.Phase1Central, machine.Phase1BAPrime} {
			m, err = machine.RunPHF(p(), *nFlag, *alpha, mode)
			mk("PHF/"+mode.String(), m, err)
		}
	}

	if *topoN > 0 {
		fmt.Println()
		tcfg := experiments.DefaultTopologyStudy(*trials, *topoN, *seed)
		tcfg.Alpha = *alpha
		tcfg.Lo = *alpha
		rows, err := experiments.RunTopologyStudy(tcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbmachine:", err)
			os.Exit(1)
		}
		if err := experiments.RenderTopologyStudy(os.Stdout, tcfg, rows); err != nil {
			fmt.Fprintln(os.Stderr, "lbmachine:", err)
			os.Exit(1)
		}
	}
}
