// Command lbserve runs the load-balancing service: a stdlib-only
// HTTP/JSON daemon that turns problem specs into partition plans with
// their guarantee bounds.
//
//	POST /v1/balance        {"spec":{"family":"uniform","lo":0.1,"hi":0.5,"seed":7},
//	                         "n":64,"algorithm":"BA-HF","alpha":0.1,"kappa":2}
//	POST /v1/balance:batch  {"items":[<balance request>, …]} — per-item
//	                        results and errors, one admission slot, in-batch
//	                        dedup (-batch-max bounds the item count)
//	POST /v1/rebalance      {<balance request>,"prior_signature":"…",
//	                         "deltas":[{"id":3,"factor":2.5}, …]} — patch the
//	                        cached prior plan incrementally instead of
//	                        replanning from scratch; the response carries a
//	                        rebalance certificate (outcome, dirty count,
//	                        band) and per-part group assignments
//	GET  /healthz
//	GET  /metricz
//
// Identical requests are answered from a sharded LRU plan cache (specs
// are deterministic, so plans are immutable facts), concurrent identical
// misses coalesce onto one computation, and a bounded worker pool sheds
// overload with typed 429/503 rejections. -target-p99 arms SLO-driven
// admission control (requests beyond the service's latency budget are
// shed with 429 + Retry-After), and the -tenant-* flags isolate tenants
// from each other with token buckets and weighted-fair queueing.
//
// SIGTERM/SIGINT drain gracefully: the listener closes, in-flight
// requests finish, and the final metrics snapshot is flushed to stderr.
// With -snapshot set, the plan cache is saved there on shutdown and
// restored on the next start, so a warm restart does not stampede the
// planner with misses. SIGHUP triggers the warm-restart path explicitly:
// drain, snapshot, exit 0 — a supervisor restarts the process, which
// picks the cache back up. -pprof serves net/http/pprof on a separate
// listener for profiling under load.
//
// Cluster mode (-peer-addr, -peers, -join) federates N lbserve processes
// into one logical service: a consistent-hash ring over canonical spec
// keys assigns each key an owner, a miss on a non-owner is proxied to
// the owner so the whole cluster runs the planner once per key, dead
// peers are excluded from the ring by heartbeat and their key ranges
// fail over to the survivors, and each node's hottest keys are
// replicated to their failover successors ahead of time. /healthz gains
// a cluster section; /metricz gains service.cluster.* counters.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bisectlb/internal/cluster"
	"bisectlb/internal/obs"
	"bisectlb/internal/service"
)

// tenantWeights parses "id=w,id=w" into the config map.
func tenantWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	m := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		id, w, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("tenant weight %q: want id=weight", part)
		}
		n, err := strconv.Atoi(w)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("tenant weight %q: weight must be a positive integer", part)
		}
		m[id] = n
	}
	return m, nil
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8733", "listen address")
		workers   = flag.Int("workers", 0, "compute pool size (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 0, "admission queue depth (0 = 4×workers)")
		cache     = flag.Int("cache", 1024, "plan cache capacity in entries (negative disables)")
		shards    = flag.Int("cache-shards", 16, "plan cache shard count")
		deadline  = flag.Duration("deadline", 2*time.Second, "default per-request deadline")
		drain     = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
		batchMax  = flag.Int("batch-max", 64, "max items per /v1/balance:batch request")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (empty disables)")

		targetP99 = flag.Duration("target-p99", 0, "latency SLO: shed load when windowed p99 exceeds this (0 disables)")
		sloTol    = flag.Float64("slo-tolerance", 1.0, "breach threshold multiplier on -target-p99")
		sloTick   = flag.Duration("slo-tick", 250*time.Millisecond, "admission control loop cadence")
		sloEpochs = flag.Int("slo-epochs", 8, "sliding window length in ticks")

		tenantRate  = flag.Float64("tenant-rate", 0, "per-tenant compute admissions/sec (0 disables token buckets)")
		tenantBurst = flag.Float64("tenant-burst", 0, "per-tenant burst (0 = 2×rate)")
		tenantShare = flag.Float64("tenant-queue-share", 1.0, "max fraction of the queue one tenant may hold")
		tenantWts   = flag.String("tenant-weights", "", "weighted-fair dequeue weights, id=w,id=w")
		maxTenants  = flag.Int("max-tenants", 64, "distinct tenant ids tracked before pooling into \"other\"")

		snapshot = flag.String("snapshot", "", "plan cache snapshot path: restored on start, saved on drain (empty disables)")

		peerAddr  = flag.String("peer-addr", "", "cluster peer-protocol listen address (empty = standalone; port 0 picks a free one)")
		peerAdv   = flag.String("peer-advertise", "", "address peers use to reach this node (default: the bound peer address)")
		peers     = flag.String("peers", "", "static cluster membership, comma-separated peer addresses")
		join      = flag.String("join", "", "join an existing cluster through this seed peer")
		vnodes    = flag.Int("vnodes", 0, "consistent-hash virtual nodes per member (0 = default)")
		beat      = flag.Duration("peer-heartbeat", 250*time.Millisecond, "cluster heartbeat interval")
		deadAfter = flag.Duration("peer-dead-after", 0, "silence after which a peer leaves the ring (0 = 4×heartbeat)")
		hotKeys   = flag.Int("hot-keys", 16, "hottest owned keys replicated to ring successors per interval (negative disables)")
	)
	flag.Parse()

	weights, err := tenantWeights(*tenantWts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbserve:", err)
		os.Exit(1)
	}

	if bound, err := obs.StartPprof(*pprofAddr); err != nil {
		fmt.Fprintln(os.Stderr, "lbserve: pprof:", err)
		os.Exit(1)
	} else if bound != "" {
		fmt.Printf("lbserve: pprof on http://%s/debug/pprof/\n", bound)
	}

	srv := service.New(service.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheCapacity:    *cache,
		CacheShards:      *shards,
		DefaultDeadline:  *deadline,
		MaxBatchItems:    *batchMax,
		TargetP99:        *targetP99,
		SLOTolerance:     *sloTol,
		SLOTick:          *sloTick,
		SLOEpochs:        *sloEpochs,
		TenantRate:       *tenantRate,
		TenantBurst:      *tenantBurst,
		TenantQueueShare: *tenantShare,
		TenantWeights:    weights,
		MaxTenants:       *maxTenants,
	})

	// Warm restart, receiving side: restore the previous process's plan
	// cache before the listener opens, so the first wave of traffic hits
	// warm plans instead of stampeding the planner.
	if *snapshot != "" {
		if n, err := srv.LoadCacheSnapshot(*snapshot); err != nil {
			fmt.Fprintln(os.Stderr, "lbserve: cache restore:", err)
		} else if n > 0 {
			fmt.Printf("lbserve: restored %d cached plans from %s\n", n, *snapshot)
		}
	}

	// Cluster mode: bring the peer tier up before the HTTP listener so a
	// node never serves client traffic with an unwired cluster field.
	var node *cluster.Node
	if *peerAddr != "" || *peers != "" || *join != "" {
		listen := *peerAddr
		if listen == "" {
			listen = "127.0.0.1:0"
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		node, err = cluster.Start(cluster.Config{
			Addr:      listen,
			Advertise: *peerAdv,
			Peers:     peerList,
			VNodes:    *vnodes,
			Heartbeat: *beat,
			DeadAfter: *deadAfter,
			HotKeys:   *hotKeys,
			Registry:  srv.Registry(),
			Fill:      srv.ClusterFill,
			Store:     srv.ClusterStore,
			Load:      srv.ClusterLoad,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbserve: cluster:", err)
			os.Exit(1)
		}
		defer node.Close()
		if *join != "" {
			if err := node.Join(*join); err != nil {
				fmt.Fprintln(os.Stderr, "lbserve: cluster:", err)
				os.Exit(1)
			}
		}
		srv.SetCluster(node)
		fmt.Printf("lbserve: cluster peer %s (%d static peers, join=%q)\n", node.Addr(), len(peerList), *join)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbserve:", err)
		os.Exit(1)
	}
	fmt.Printf("lbserve: listening on http://%s (workers=%d cache=%d)\n",
		ln.Addr(), srv.Registry().Gauge("service.workers").Value(), *cache)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT, syscall.SIGHUP)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	exitCode := 0
	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "lbserve: %v — draining (finishing in-flight requests)\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "lbserve: drain:", err)
			exitCode = 1
		}
		<-done
		// Warm restart, sending side: after the drain, the cache is
		// quiescent — snapshot it for the successor. SIGHUP is the
		// explicit restart request and exits 0 so a supervisor's restart
		// policy treats it as intentional.
		if *snapshot != "" {
			if n, err := srv.SaveCacheSnapshot(*snapshot); err != nil {
				fmt.Fprintln(os.Stderr, "lbserve: cache snapshot:", err)
				exitCode = 1
			} else {
				fmt.Fprintf(os.Stderr, "lbserve: snapshotted %d cached plans to %s\n", n, *snapshot)
			}
		}
		if sig == syscall.SIGHUP && exitCode == 0 {
			fmt.Fprintln(os.Stderr, "lbserve: warm restart requested (SIGHUP); exiting for supervisor restart")
		}
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "lbserve:", err)
			os.Exit(1)
		}
	}

	// Flush the final metrics snapshot so a supervised process leaves a
	// record of what it served.
	fmt.Fprintln(os.Stderr, "lbserve: final metrics")
	srv.Registry().WriteText(os.Stderr)
	os.Exit(exitCode)
}
