// Command lbserve runs the load-balancing service: a stdlib-only
// HTTP/JSON daemon that turns problem specs into partition plans with
// their guarantee bounds.
//
//	POST /v1/balance        {"spec":{"family":"uniform","lo":0.1,"hi":0.5,"seed":7},
//	                         "n":64,"algorithm":"BA-HF","alpha":0.1,"kappa":2}
//	POST /v1/balance:batch  {"items":[<balance request>, …]} — per-item
//	                        results and errors, one admission slot, in-batch
//	                        dedup (-batch-max bounds the item count)
//	GET  /healthz
//	GET  /metricz
//
// Identical requests are answered from a sharded LRU plan cache (specs
// are deterministic, so plans are immutable facts), concurrent identical
// misses coalesce onto one computation, and a bounded worker pool sheds
// overload with typed 429/503 rejections. SIGTERM/SIGINT drain
// gracefully: the listener closes, in-flight requests finish, and the
// final metrics snapshot is flushed to stderr. -pprof serves
// net/http/pprof on a separate listener for profiling under load.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bisectlb/internal/obs"
	"bisectlb/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8733", "listen address")
		workers   = flag.Int("workers", 0, "compute pool size (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 0, "admission queue depth (0 = 4×workers)")
		cache     = flag.Int("cache", 1024, "plan cache capacity in entries (negative disables)")
		shards    = flag.Int("cache-shards", 16, "plan cache shard count")
		deadline  = flag.Duration("deadline", 2*time.Second, "default per-request deadline")
		drain     = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
		batchMax  = flag.Int("batch-max", 64, "max items per /v1/balance:batch request")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (empty disables)")
	)
	flag.Parse()

	if bound, err := obs.StartPprof(*pprofAddr); err != nil {
		fmt.Fprintln(os.Stderr, "lbserve: pprof:", err)
		os.Exit(1)
	} else if bound != "" {
		fmt.Printf("lbserve: pprof on http://%s/debug/pprof/\n", bound)
	}

	srv := service.New(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheCapacity:   *cache,
		CacheShards:     *shards,
		DefaultDeadline: *deadline,
		MaxBatchItems:   *batchMax,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbserve:", err)
		os.Exit(1)
	}
	fmt.Printf("lbserve: listening on http://%s (workers=%d cache=%d)\n",
		ln.Addr(), srv.Registry().Gauge("service.workers").Value(), *cache)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "lbserve: %v — draining (finishing in-flight requests)\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "lbserve: drain:", err)
		}
		<-done
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "lbserve:", err)
			os.Exit(1)
		}
	}

	// Flush the final metrics snapshot so a supervised process leaves a
	// record of what it served.
	fmt.Fprintln(os.Stderr, "lbserve: final metrics")
	srv.Registry().WriteText(os.Stderr)
}
