// Command lbtrace visualises a simulated run on the paper's machine model
// as a per-processor Gantt chart: who bisects, sends, receives and joins
// global operations at which model time. Useful for seeing *why* BA is
// O(log N) with zero global communication while PHF interleaves local work
// with collective phases.
package main

import (
	"flag"
	"fmt"
	"os"

	"bisectlb/internal/bisect"
	"bisectlb/internal/machine"
)

func main() {
	var (
		alg      = flag.String("alg", "ba", "algorithm to trace: ba | phf")
		n        = flag.Int("n", 32, "processor count")
		lo       = flag.Float64("lo", 0.1, "lower bound of the α̂ interval")
		hi       = flag.Float64("hi", 0.5, "upper bound of the α̂ interval")
		alpha    = flag.Float64("alpha", 0.1, "declared class parameter α (phf)")
		seed     = flag.Uint64("seed", 1999, "instance seed")
		maxProcs = flag.Int("rows", 32, "maximum processor rows to display")
	)
	flag.Parse()

	p, err := bisect.NewSynthetic(1, *lo, *hi, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbtrace:", err)
		os.Exit(2)
	}

	var m *machine.Metrics
	var tr *machine.Trace
	switch *alg {
	case "ba":
		m, tr, err = machine.RunBATrace(p, *n)
	case "phf":
		m, tr, err = machine.RunPHFOracleTrace(p, *n, *alpha)
	default:
		fmt.Fprintf(os.Stderr, "lbtrace: unknown algorithm %q (want ba or phf)\n", *alg)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbtrace:", err)
		os.Exit(1)
	}

	fmt.Printf("%s on N=%d: makespan=%d, messages=%d, global ops=%d, ratio=%.4f\n\n",
		m.Algorithm, m.N, m.Makespan, m.Messages, m.GlobalOps, m.Ratio)
	if err := machine.RenderGantt(os.Stdout, tr, *maxProcs); err != nil {
		fmt.Fprintln(os.Stderr, "lbtrace:", err)
		os.Exit(1)
	}
}
