// Command lbverify grid-searches the paper's guarantees far beyond
// Table 1: it draws randomized (α, N, family, seed) instances and checks
// every invariant the verify subsystem knows — structural partition
// contracts, the per-bisection α-band, the HF/PHF/BA/BA-HF worst-case
// ratio guarantees, flat-planner ≡ interface parity, and PHF ≡ HF parity
// on the tie-free family (EXPERIMENTS.md X10; DESIGN.md §11). The two
// real-instance families (graph, spatial) check guarantees against the
// realized α̂ of each run — the measured bound r_α̂ (DESIGN.md §16).
//
// Every failure is shrunk to a minimal reproduction and printed with the
// fields needed to replay it; the exit status is nonzero if any
// invariant was falsified.
//
//	lbverify -sweep                       # 10⁴ instances, seed 1
//	lbverify -sweep -instances 100000     # go deeper
//	lbverify -sweep -seed 7 -families graph,spatial
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bisectlb/internal/verify"
)

func main() {
	var (
		sweep     = flag.Bool("sweep", false, "run the randomized guarantee sweep")
		instances = flag.Int("instances", 10000, "number of random instances to draw")
		seed      = flag.Uint64("seed", 1, "instance-stream seed (same seed replays the same sweep)")
		maxN      = flag.Int("maxn", 2048, "cap on generated processor counts")
		tol       = flag.Float64("tol", 1e-9, "relative tolerance for weight-conservation checks")
		families  = flag.String("families", "", "comma-separated family subset (uniform,fixed,list,fem,graph,spatial); empty = all")
		progress  = flag.Bool("v", false, "print progress every 1000 instances")
	)
	flag.Parse()

	if !*sweep {
		fmt.Fprintln(os.Stderr, "lbverify: nothing to do (pass -sweep)")
		flag.Usage()
		os.Exit(2)
	}

	fams, err := parseFamilies(*families)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbverify:", err)
		os.Exit(2)
	}

	cfg := verify.SweepConfig{
		Instances: *instances,
		Seed:      *seed,
		MaxN:      *maxN,
		Tol:       *tol,
		Families:  fams,
	}
	if *progress {
		cfg.Progress = func(done, total int) {
			if done%1000 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "lbverify: %d/%d instances\n", done, total)
			}
		}
	}

	rep := verify.Sweep(cfg)
	fmt.Printf("lbverify: swept %d instances (seed %d), %d invariant checks\n", rep.Instances, *seed, rep.Checks)
	for _, f := range verify.AllFamilies {
		if n := rep.ByFamily[f.String()]; n > 0 {
			fmt.Printf("  %-8s %6d instances\n", f.String(), n)
		}
	}
	if rep.OK() {
		fmt.Println("lbverify: all guarantees hold")
		return
	}
	fmt.Printf("lbverify: %d VIOLATIONS\n", len(rep.Failures))
	for _, f := range rep.Failures {
		fmt.Printf("  [%s] %s\n    instance: %s\n    minimal:  %s\n", f.Alg, f.Err, f.Instance, f.Minimal)
	}
	os.Exit(1)
}

func parseFamilies(s string) ([]verify.Family, error) {
	if s == "" {
		return nil, nil
	}
	var out []verify.Family
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, f := range verify.AllFamilies {
			if f.String() == name {
				out = append(out, f)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown family %q", name)
		}
	}
	return out, nil
}
