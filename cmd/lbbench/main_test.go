package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestMainParallelSweep drives the binary's -parallel path end to end:
// flag parsing, the X12 sweep, the stdout table, and the writeTo helper
// including directory creation for a nested output path. main can only
// run once per process (it registers its flags on the global FlagSet),
// so this test owns it.
func TestMainParallelSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("the sweep plans N=2^20 instances")
	}
	out := filepath.Join(t.TempDir(), "sub", "parallel.txt")
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	os.Args = []string{"lbbench", "-parallel", "-benchtime", "1ns", "-parallel-out", out}
	main()
	if st, err := os.Stat(out); err != nil || st.Size() == 0 {
		t.Fatalf("sweep table not written: stat %v", err)
	}
}
