// Command lbbench runs the tracked core-planner benchmark suite: the
// allocation-free planner (HF, PHF, BA, BA-HF) over the fixed
// α × N grid of internal/bench, on the paper's synthetic substrate.
//
// It prints an aligned table, writes it to -out, and writes the
// machine-readable suite to -json — by default the checked-in
// BENCH_core.json, the repo's core-performance trajectory file
// (EXPERIMENTS.md X9). `make bench-core` is the canonical invocation.
//
// With -parallel it instead runs the X12 speedup study: BA-HF planning
// of the N=2^20 synthetic instance through the multicore planner at
// each worker count in internal/bench.SweepWorkers, written to
// -parallel-out (results/parallel.txt via `make sweep-parallel`).
//
//	lbbench                       # full run, rewrites BENCH_core.json
//	lbbench -benchtime 50ms       # quicker, noisier
//	lbbench -json "" -out ""      # print only, touch nothing
//	lbbench -parallel             # X12 sweep, rewrites results/parallel.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"bisectlb/internal/bench"
)

func main() {
	var (
		benchtime = flag.Duration("benchtime", 250*time.Millisecond, "time budget per grid cell")
		outPath   = flag.String("out", "results/bench_core.txt", "human-readable table file (empty disables)")
		jsonPath  = flag.String("json", "BENCH_core.json", "machine-readable suite file (empty disables)")
		parallel  = flag.Bool("parallel", false, "run the X12 parallel speedup sweep instead of the grid")
		parOut    = flag.String("parallel-out", "results/parallel.txt", "sweep table file (empty disables)")
	)
	flag.Parse()

	if *parallel {
		sw, err := bench.RunParallelSweep(*benchtime, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbbench:", err)
			os.Exit(1)
		}
		if err := sw.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "lbbench:", err)
			os.Exit(1)
		}
		if *parOut != "" {
			writeTo(*parOut, func(f *os.File) error { return sw.WriteText(f) })
		}
		return
	}

	s, err := bench.RunCore(*benchtime)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbbench:", err)
		os.Exit(1)
	}
	if *jsonPath != "" {
		// The {real} section belongs to `lbsim -exp real`; re-timing the
		// grid must not drop it.
		if prev, err := bench.LoadSuite(*jsonPath); err == nil {
			s.Real = prev.Real
		}
	}
	if err := s.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lbbench:", err)
		os.Exit(1)
	}
	if *outPath != "" {
		writeTo(*outPath, func(f *os.File) error { return s.WriteText(f) })
	}
	if *jsonPath != "" {
		writeTo(*jsonPath, func(f *os.File) error { return s.WriteJSON(f) })
	}
}

func writeTo(path string, render func(*os.File) error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "lbbench:", err)
			os.Exit(1)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbbench:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := render(f); err != nil {
		fmt.Fprintln(os.Stderr, "lbbench:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "lbbench: wrote", path)
}
