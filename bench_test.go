package bisectlb_test

// Benchmark harness: one bench per exhibit of the paper's evaluation
// (DESIGN.md §6) plus the ablation benches of §7. Benchmarks use reduced
// trial counts — they exist to regenerate each exhibit's computation and
// to track the cost of its pieces; the CLIs (cmd/lbtable, cmd/lbfigure,
// cmd/lbsim, cmd/lbmachine) run the full-size versions.

import (
	"time"

	"testing"

	"bisectlb"
	"bisectlb/internal/bisect"
	"bisectlb/internal/core"
	"bisectlb/internal/dist"
	"bisectlb/internal/experiments"
	"bisectlb/internal/machine"
)

// --- E1: Table 1 -----------------------------------------------------------

func benchTriple(b *testing.B, cfg experiments.TripleConfig) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := experiments.RunTriple(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates a reduced Table 1 (α̂ ~ U[0.01, 0.5], κ=1).
func BenchmarkTable1(b *testing.B) {
	benchTriple(b, experiments.TripleConfig{
		Lo: 0.01, Hi: 0.5, Kappa: 1, Trials: 10,
		Ns: experiments.PowersOfTwo(5, 10),
	})
}

// --- E2: Figure 5 ----------------------------------------------------------

// BenchmarkFigure5 regenerates a reduced Figure 5 (α̂ ~ U[0.1, 0.5], κ=1).
func BenchmarkFigure5(b *testing.B) {
	benchTriple(b, experiments.TripleConfig{
		Lo: 0.1, Hi: 0.5, Kappa: 1, Trials: 10,
		Ns: experiments.PowersOfTwo(5, 10),
	})
}

// --- E3: κ-study ------------------------------------------------------------

// BenchmarkKappaStudy regenerates the κ ∈ {1, 2, 3} comparison.
func BenchmarkKappaStudy(b *testing.B) {
	cfg := experiments.DefaultKappaConfig(10, 9, 1)
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := experiments.RunKappaStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: variance study ------------------------------------------------------

// BenchmarkVarianceStudy regenerates the interval-contrast variance study.
func BenchmarkVarianceStudy(b *testing.B) {
	cfg := experiments.DefaultVarianceStudy(10, 9, 1)
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := experiments.RunVarianceStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5: odd-N study ----------------------------------------------------------

// BenchmarkOddNStudy regenerates the non-power-of-two comparison.
func BenchmarkOddNStudy(b *testing.B) {
	cfg := experiments.DefaultOddNStudy(10, 1)
	cfg.OddNs = []int{37, 100, 523}
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := experiments.RunOddNStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: machine-model study --------------------------------------------------

func benchMachine(b *testing.B, run func(p bisect.Problem) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		p := bisect.MustSynthetic(1, 0.1, 0.5, uint64(i+1))
		if err := run(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachineHF simulates sequential HF on the machine model (Θ(N)).
func BenchmarkMachineHF(b *testing.B) {
	benchMachine(b, func(p bisect.Problem) error {
		_, err := machine.RunHF(p, 1<<12)
		return err
	})
}

// BenchmarkMachineBA simulates BA on the machine model (O(log N), no
// global communication).
func BenchmarkMachineBA(b *testing.B) {
	benchMachine(b, func(p bisect.Problem) error {
		_, err := machine.RunBA(p, 1<<12)
		return err
	})
}

// BenchmarkMachineBAHF simulates BA-HF on the machine model.
func BenchmarkMachineBAHF(b *testing.B) {
	benchMachine(b, func(p bisect.Problem) error {
		_, err := machine.RunBAHF(p, 1<<12, 0.1, 1.0)
		return err
	})
}

// BenchmarkMachinePHFOracle simulates PHF with constant-time free-processor
// acquisition.
func BenchmarkMachinePHFOracle(b *testing.B) {
	benchMachine(b, func(p bisect.Problem) error {
		_, err := machine.RunPHF(p, 1<<12, 0.1, machine.Phase1Oracle)
		return err
	})
}

// BenchmarkMachinePHFCentral simulates PHF with the contended central
// free-processor manager.
func BenchmarkMachinePHFCentral(b *testing.B) {
	benchMachine(b, func(p bisect.Problem) error {
		_, err := machine.RunPHF(p, 1<<12, 0.1, machine.Phase1Central)
		return err
	})
}

// BenchmarkMachinePHFBAPrime simulates PHF with the BA′ bootstrap
// (Section 3.4).
func BenchmarkMachinePHFBAPrime(b *testing.B) {
	benchMachine(b, func(p bisect.Problem) error {
		_, err := machine.RunPHF(p, 1<<12, 0.1, machine.Phase1BAPrime)
		return err
	})
}

// --- core algorithm throughput -------------------------------------------------

const benchN = 4096

func benchAlg(b *testing.B, run func(p bisectlb.Problem) error) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := bisectlb.NewSyntheticProblem(1, 0.1, 0.5, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if err := run(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlgHF measures HF partitioning 4096 ways.
func BenchmarkAlgHF(b *testing.B) {
	benchAlg(b, func(p bisectlb.Problem) error {
		_, err := bisectlb.HF(p, benchN)
		return err
	})
}

// BenchmarkAlgBA measures BA partitioning 4096 ways.
func BenchmarkAlgBA(b *testing.B) {
	benchAlg(b, func(p bisectlb.Problem) error {
		_, err := bisectlb.BA(p, benchN)
		return err
	})
}

// BenchmarkAlgBAHF measures BA-HF partitioning 4096 ways.
func BenchmarkAlgBAHF(b *testing.B) {
	benchAlg(b, func(p bisectlb.Problem) error {
		_, err := bisectlb.BAHF(p, benchN, 0.1, 1.0)
		return err
	})
}

// BenchmarkAlgPHF measures logical PHF partitioning 4096 ways.
func BenchmarkAlgPHF(b *testing.B) {
	benchAlg(b, func(p bisectlb.Problem) error {
		_, err := bisectlb.PHF(p, benchN, 0.1)
		return err
	})
}

// BenchmarkParallelBA measures goroutine-parallel BA (DESIGN.md §7 fan-out
// ablation: vary SpawnThreshold via -benchtime sub-runs).
func BenchmarkParallelBA(b *testing.B) {
	for _, thr := range []int{16, 64, 256} {
		thr := thr
		b.Run(sprint("spawn", thr), func(b *testing.B) {
			benchAlg(b, func(p bisectlb.Problem) error {
				_, err := bisectlb.ParallelBA(p, benchN, bisectlb.ParallelOptions{SpawnThreshold: thr})
				return err
			})
		})
	}
}

// BenchmarkParallelPHF measures goroutine-parallel PHF across worker counts.
func BenchmarkParallelPHF(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		b.Run(sprint("workers", workers), func(b *testing.B) {
			benchAlg(b, func(p bisectlb.Problem) error {
				_, err := bisectlb.ParallelPHF(p, benchN, 0.1, bisectlb.ParallelOptions{Workers: workers})
				return err
			})
		})
	}
}

// --- ablations (DESIGN.md §7) -----------------------------------------------

// BenchmarkHFHeapVsScan compares HF's heap against the naive linear-scan
// maximum selection.
func BenchmarkHFHeapVsScan(b *testing.B) {
	b.Run("heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := bisect.MustSynthetic(1, 0.1, 0.5, uint64(i+1))
			if _, err := core.HF(p, 2048, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := bisect.MustSynthetic(1, 0.1, 0.5, uint64(i+1))
			if _, err := core.HFScan(p, 2048, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBASplitRule compares the best-approximation processor split
// against the naive floor rule, in quality-neutral throughput terms (the
// quality ablation lives in the core test suite).
func BenchmarkBASplitRule(b *testing.B) {
	b.Run("best-approx", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := bisect.MustSynthetic(1, 0.1, 0.5, uint64(i+1))
			if _, err := core.BA(p, 2048, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive-floor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := bisect.MustSynthetic(1, 0.1, 0.5, uint64(i+1))
			if _, err := core.BANaiveSplit(p, 2048, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- substrate bisection costs -----------------------------------------------

// BenchmarkSubstrateBisect measures one bisection on each workload family.
func BenchmarkSubstrateBisect(b *testing.B) {
	b.Run("synthetic", func(b *testing.B) {
		p := bisect.MustSynthetic(1, 0.1, 0.5, 1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Bisect()
		}
	})
	b.Run("fem-tree", func(b *testing.B) {
		p := bisectlb.DefaultFEMTreeProblem(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Bisect()
		}
	})
	b.Run("quadrature", func(b *testing.B) {
		p, err := bisectlb.NewQuadratureProblem(bisectlb.QuadratureMedianSplit, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Bisect()
		}
	})
	b.Run("search-frontier", func(b *testing.B) {
		p := bisectlb.DefaultSearchTreeProblem(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Bisect()
		}
	})
}

func sprint(prefix string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "=0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return prefix + "=" + string(buf[i:])
}

// --- extension studies ---------------------------------------------------------

// BenchmarkRobustnessStudy regenerates the weight-estimation-noise sweep.
func BenchmarkRobustnessStudy(b *testing.B) {
	cfg := experiments.DefaultRobustnessStudy(5, 1)
	cfg.N = 256
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := experiments.RunRobustnessStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSplitRuleAblationStudy regenerates the BA split-rule quality
// ablation.
func BenchmarkSplitRuleAblationStudy(b *testing.B) {
	cfg := experiments.DefaultSplitRuleAblation(5, 9, 1)
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := experiments.RunSplitRuleAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopologyStudy regenerates the interconnect comparison.
func BenchmarkTopologyStudy(b *testing.B) {
	cfg := experiments.DefaultTopologyStudy(3, 512, 1)
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := experiments.RunTopologyStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeteroBA measures the heterogeneous BA on a mixed-speed machine.
func BenchmarkHeteroBA(b *testing.B) {
	speeds := make([]float64, 1024)
	for i := range speeds {
		speeds[i] = float64(1 + i%7)
	}
	speeds = bisectlb.SortedSpeeds(speeds)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := bisectlb.NewSyntheticProblem(1, 0.1, 0.5, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bisectlb.HeteroBA(p, speeds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistributedBA measures a full BA run over a 4-node loopback TCP
// cluster, including cluster setup.
func BenchmarkDistributedBA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cl, err := dist.StartCluster(64, 4)
		if err != nil {
			b.Fatal(err)
		}
		root, err := dist.Encode(bisect.MustSynthetic(1, 0.1, 0.5, uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		addrs := make([]string, len(cl.Nodes))
		for j, nd := range cl.Nodes {
			addrs[j] = nd.Addr()
		}
		if _, err := cl.Coord.Run(root, 64, addrs, 30*time.Second); err != nil {
			b.Fatal(err)
		}
		cl.Close()
	}
}

// BenchmarkDistributedPHF measures a full PHF run (collectives included)
// over a 4-node loopback TCP cluster.
func BenchmarkDistributedPHF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		root, err := dist.Encode(bisect.MustSynthetic(1, 0.1, 0.5, uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dist.RunPHFCluster(root, 64, 4, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}
