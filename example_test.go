package bisectlb_test

import (
	"fmt"
	"log"

	"bisectlb"
)

// ExampleBalance shows algorithm selection through the unified entry point.
func ExampleBalance() {
	problem, err := bisectlb.NewFixedProblem(1.0, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	res, err := bisectlb.Balance(problem, 4, bisectlb.Config{
		Algorithm: bisectlb.BAAlgorithm,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s split into %d parts with %d bisections\n",
		res.Algorithm, len(res.Parts), res.Bisections)
	// Output: BA split into 4 parts with 3 bisections
}

// ExamplePHF demonstrates the paper's Theorem 3: PHF computes HF's exact
// partition while running in O(log N) parallel rounds.
func ExamplePHF() {
	mk := func() bisectlb.Problem {
		p, err := bisectlb.NewSyntheticProblem(1.0, 0.2, 0.5, 7)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	hf, err := bisectlb.HF(mk(), 16)
	if err != nil {
		log.Fatal(err)
	}
	phf, err := bisectlb.PHF(mk(), 16, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("identical partitions:", bisectlb.SamePartition(hf, &phf.Result))
	// Output: identical partitions: true
}

// ExampleGuaranteeHF evaluates the worst-case bound r_α of Theorem 2.
func ExampleGuaranteeHF() {
	g, err := bisectlb.GuaranteeHF(1.0 / 3.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("r_{1/3} = %.0f\n", g)
	// Output: r_{1/3} = 2
}

// ExampleCheckAlpha validates a custom problem class before declaring its α
// to the α-aware algorithms.
func ExampleCheckAlpha() {
	problem, err := bisectlb.NewSyntheticProblem(1.0, 0.3, 0.5, 1)
	if err != nil {
		log.Fatal(err)
	}
	violations := bisectlb.CheckAlpha(problem, 0.3, 6, 1e-9)
	fmt.Println("violations of the declared α=0.3:", len(violations))
	// Output: violations of the declared α=0.3: 0
}

// ExampleKappaFor tunes BA-HF's threshold parameter for a 5% quality
// tolerance, per the paper's closing rule κ ≥ 1/ln(1+ε).
func ExampleKappaFor() {
	kappa, err := bisectlb.KappaFor(0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("κ for ε=0.05: %.1f\n", kappa)
	// Output: κ for ε=0.05: 20.5
}

// ExampleRecommend applies the paper's concluding decision guidance.
func ExampleRecommend() {
	rec, err := bisectlb.Recommend(0.2, 1024, 0.1, bisectlb.MachineProfile{
		GlobalOpsCheap: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recommended:", rec.Algorithm)
	// Output: recommended: PHF
}

// ExampleHeteroBA balances over processors with unequal speeds.
func ExampleHeteroBA() {
	problem, err := bisectlb.NewFixedProblem(1.0, 0.5) // perfect halving
	if err != nil {
		log.Fatal(err)
	}
	res, err := bisectlb.HeteroBA(problem, bisectlb.SortedSpeeds([]float64{1, 3, 3, 1}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("makespan within %.2fx of the ideal\n", res.Ratio)
	// Output: makespan within 1.33x of the ideal
}
