// Adaptive-quadrature example (paper ref [4]): distribute the estimated
// work of a multi-dimensional adaptive quadrature over 32 processors. The
// example contrasts the weighted-median box bisector (a good bisector)
// with naive midpoint splitting, showing how bisector quality drives the
// achievable balance — the core message of the paper.
package main

import (
	"fmt"
	"log"

	"bisectlb"
)

func main() {
	const (
		n    = 32
		seed = 3
	)

	run := func(name string, split bisectlb.QuadratureSplit) {
		problem, err := bisectlb.NewQuadratureProblem(split, seed)
		if err != nil {
			log.Fatal(err)
		}
		probed := bisectlb.ProbeAlpha(problem, 4*n)
		alpha := probed * 0.9
		fmt.Printf("%s splitting: total work %.2f, probed α̂_min = %.3f\n",
			name, problem.Weight(), probed)

		hf, err := bisectlb.HF(problem, n)
		if err != nil {
			log.Fatal(err)
		}
		ba, err := bisectlb.BA(problem, n)
		if err != nil {
			log.Fatal(err)
		}
		hyb, err := bisectlb.BAHF(problem, n, alpha, 1.0)
		if err != nil {
			log.Fatal(err)
		}
		guarantee, err := bisectlb.GuaranteeHF(alpha)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  HF ratio %.3f | BA ratio %.3f | BA-HF ratio %.3f | HF guarantee at α=%.3f: %.2f\n\n",
			hf.Ratio, ba.Ratio, hyb.Ratio, alpha, guarantee)
	}

	run("weighted-median", bisectlb.QuadratureMedianSplit)
	run("midpoint", bisectlb.QuadratureMidpointSplit)

	// Show where the heaviest region sits: the sub-box containing the
	// integrand's sharpest peak keeps the most quadrature work.
	problem, err := bisectlb.NewQuadratureProblem(bisectlb.QuadratureMedianSplit, seed)
	if err != nil {
		log.Fatal(err)
	}
	res, err := bisectlb.HF(problem, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-processor work (weighted-median splitting, HF):")
	for i, part := range res.Parts {
		fmt.Printf("  P%-2d %8.3f", i+1, part.Problem.Weight())
		if (i+1)%4 == 0 {
			fmt.Println()
		}
	}
	fmt.Println()
}
