// Quickstart: balance a synthetic problem with good bisectors across 64
// processors using every algorithm of the paper and compare the achieved
// maximum load against the ideal share and the worst-case guarantees.
package main

import (
	"fmt"
	"log"

	"bisectlb"
)

func main() {
	const (
		n     = 64   // processors
		alpha = 0.1  // guaranteed bisector quality of the class
		kappa = 1.0  // BA-HF threshold parameter
		seed  = 1999 // reproducible instance
	)

	// The paper's stochastic model: every bisection splits with a fraction
	// drawn uniformly from [alpha, 0.5].
	problem, err := bisectlb.NewSyntheticProblem(1.0, alpha, 0.5, seed)
	if err != nil {
		log.Fatal(err)
	}

	// Validate the α-bisector contract before declaring α to the
	// α-aware algorithms.
	if v := bisectlb.CheckAlpha(problem, alpha, 8, 1e-9); len(v) != 0 {
		log.Fatalf("problem violates the α-bisector contract: %v", v[0])
	}

	fmt.Printf("balancing weight %.2f across %d processors (ideal share %.5f)\n\n",
		problem.Weight(), n, problem.Weight()/n)
	fmt.Printf("%-14s %10s %10s %14s %12s\n",
		"algorithm", "max load", "ratio", "bisections", "guarantee")

	show := func(name string, res *bisectlb.Result, guarantee float64) {
		fmt.Printf("%-14s %10.5f %10.4f %14d %12.2f\n",
			name, res.Max, res.Ratio, res.Bisections, guarantee)
	}

	gHF, _ := bisectlb.GuaranteeHF(alpha)
	gBA, _ := bisectlb.GuaranteeBA(alpha, n)
	gHyb, _ := bisectlb.GuaranteeBAHF(alpha, kappa)

	hf, err := bisectlb.HF(problem, n)
	if err != nil {
		log.Fatal(err)
	}
	show("HF", hf, gHF)

	phf, err := bisectlb.PHF(problem, n, alpha)
	if err != nil {
		log.Fatal(err)
	}
	show("PHF", &phf.Result, gHF)

	ba, err := bisectlb.BA(problem, n)
	if err != nil {
		log.Fatal(err)
	}
	show("BA", ba, gBA)

	hyb, err := bisectlb.BAHF(problem, n, alpha, kappa)
	if err != nil {
		log.Fatal(err)
	}
	show("BA-HF", hyb, gHyb)

	parBA, err := bisectlb.ParallelBA(problem, n, bisectlb.ParallelOptions{})
	if err != nil {
		log.Fatal(err)
	}
	show("parallel BA", parBA, gBA)

	parPHF, err := bisectlb.ParallelPHF(problem, n, alpha, bisectlb.ParallelOptions{})
	if err != nil {
		log.Fatal(err)
	}
	show("parallel PHF", &parPHF.Result, gHF)

	fmt.Println()
	// Theorem 3 in action: PHF (in both executions) computed exactly HF's
	// partition.
	fmt.Printf("PHF == HF partitions:          %v\n", bisectlb.SamePartition(hf, &phf.Result))
	fmt.Printf("parallel PHF == HF partitions: %v\n", bisectlb.SamePartition(hf, &parPHF.Result))
	fmt.Printf("parallel BA == BA partitions:  %v\n", bisectlb.SamePartition(ba, parBA))
	fmt.Printf("PHF phase accounting: %d phase-1 rounds, %d phase-2 iterations, %d global ops, model time %d\n",
		phf.Phase1Rounds, phf.Phase2Iterations, phf.GlobalOps, phf.ModelTime)
}
