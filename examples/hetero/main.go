// Heterogeneous-processor example: an extension beyond the paper's
// identical-processor model. A cluster mixing fast and slow nodes balances
// an FE-tree so each node finishes at (nearly) the same time: the
// heterogeneous BA cuts processor ranges at capacity prefixes instead of
// processor counts.
package main

import (
	"fmt"
	"log"
	"strings"

	"bisectlb"
)

func main() {
	// A small cluster: two fast nodes, four mid nodes, six slow ones.
	speeds := bisectlb.SortedSpeeds([]float64{1, 4, 1, 8, 2, 1, 2, 8, 2, 1, 2, 1})
	var total float64
	for _, s := range speeds {
		total += s
	}

	problem := bisectlb.DefaultFEMTreeProblem(5)
	fmt.Printf("FE-tree of weight %.1f over %d processors with total speed %.0f\n",
		problem.Weight(), len(speeds), total)
	fmt.Printf("ideal completion time: %.3f\n\n", problem.Weight()/total)

	show := func(name string, res *bisectlb.HeteroResult) {
		fmt.Printf("%s: makespan %.3f (ratio %.3f over ideal)\n", name, res.Makespan, res.Ratio)
		for _, a := range res.Assignments {
			speed := 0.0
			for i := a.Lo; i < a.Hi; i++ {
				speed += speeds[i]
			}
			bar := int(36 * a.Time / res.Makespan)
			fmt.Printf("  procs %2d-%-2d (speed %4.0f)  load %7.1f  time %6.3f |%s\n",
				a.Lo+1, a.Hi, speed, a.Problem.Weight(), a.Time, strings.Repeat("#", bar))
		}
		fmt.Println()
	}

	ba, err := bisectlb.HeteroBA(problem, speeds)
	if err != nil {
		log.Fatal(err)
	}
	show("heterogeneous BA", ba)

	hf, err := bisectlb.HeteroHF(problem, speeds)
	if err != nil {
		log.Fatal(err)
	}
	show("HF + sorted matching", hf)

	// Contrast: ignoring the speeds costs real time. Balance uniformly and
	// deal parts to processors in index order.
	uniform, err := bisectlb.BA(problem, len(speeds))
	if err != nil {
		log.Fatal(err)
	}
	blind := 0.0
	for i, part := range uniform.Parts {
		if t := part.Problem.Weight() / speeds[i%len(speeds)]; t > blind {
			blind = t
		}
	}
	fmt.Printf("speed-blind uniform split on the same cluster: makespan %.3f (%.1fx worse than hetero BA)\n",
		blind, blind/ba.Makespan)
}
