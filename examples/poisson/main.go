// Poisson example: the paper's motivating scenario made fully concrete.
// A 1-D Poisson equation is discretised on an adaptively graded mesh,
// solved (and verified against the exact solution), and the explicit
// time-integration work of the mesh — wildly imbalanced by the grading —
// is distributed over worker goroutines with Algorithm HF. Real wall-clock
// per-worker times demonstrate that the predicted load ratio translates
// into actual parallel balance.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"
	"sync"
	"time"

	"bisectlb/internal/core"
	"bisectlb/internal/fem1d"
)

func main() {
	const (
		elements    = 20000
		singularity = 0.25
		grading     = 0.84
	)

	mesh, err := fem1d.GradedMesh(elements, singularity, grading)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adaptive mesh: %d elements, widths %.2e … %.2e (graded toward x = %g)\n",
		mesh.Elements(), minWidth(mesh), maxWidth(mesh), singularity)

	// Solve −u″ = π² sin(πx) and verify against the exact solution.
	f := func(x float64) float64 { return math.Pi * math.Pi * math.Sin(math.Pi*x) }
	exact := func(x float64) float64 { return math.Sin(math.Pi * x) }
	u, err := fem1d.Solve(mesh, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Poisson solve: max nodal error %.2e against the exact solution\n\n",
		fem1d.MaxNodalError(mesh, u, exact))

	// Distribute the integration work across workers with Algorithm HF.
	// The worker count is fixed so the output is comparable across
	// machines; on a box with fewer cores the goroutines time-share but
	// the work-unit accounting below is deterministic either way.
	const workers = 8
	root := fem1d.RootSpan(mesh, 1)
	res, err := core.HF(root, workers, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HF split of the integration work across %d workers: predicted ratio %.3f\n",
		workers, res.Ratio)

	// A naive equal-element split for contrast.
	naive := make([]*fem1d.Span, 0, workers)
	for k := 0; k < workers; k++ {
		lo := k * mesh.Elements() / workers
		hi := (k + 1) * mesh.Elements() / workers
		naive = append(naive, spanOf(mesh, lo, hi))
	}

	measure := func(label string, spans []*fem1d.Span) {
		units := make([]int64, len(spans))
		var wg sync.WaitGroup
		start := time.Now()
		for i, s := range spans {
			wg.Add(1)
			go func(i int, s *fem1d.Span) {
				defer wg.Done()
				_ = s.Integrate()
				units[i] = s.WorkUnits()
			}(i, s)
		}
		wg.Wait()
		elapsed := time.Since(start)
		var total, worst int64
		for _, u := range units {
			total += u
			if u > worst {
				worst = u
			}
		}
		mean := float64(total) / float64(len(units))
		fmt.Printf("\n%s: %.2fx work imbalance (heaviest/mean), wall clock %v\n",
			label, float64(worst)/mean, elapsed.Round(time.Millisecond))
		for i, u := range units {
			bar := int(40 * u / worst)
			fmt.Printf("  W%-2d %12d units |%s\n", i+1, u, strings.Repeat("#", bar))
		}
	}

	hfSpans := make([]*fem1d.Span, 0, workers)
	for _, pt := range res.Parts {
		hfSpans = append(hfSpans, pt.Problem.(*fem1d.Span))
	}
	measure("HF-balanced spans", hfSpans)
	measure("naive equal-element spans", naive)
}

func spanOf(m *fem1d.Mesh, lo, hi int) *fem1d.Span {
	// Carve the span by bisecting the root repeatedly is unnecessary: the
	// example only needs a Span value for measurement, so use the root and
	// re-slice via the exported API.
	s := fem1d.RootSpan(m, 99)
	return s.Slice(lo, hi)
}

func minWidth(m *fem1d.Mesh) float64 {
	w := math.Inf(1)
	for e := 0; e < m.Elements(); e++ {
		if h := m.H(e); h < w {
			w = h
		}
	}
	return w
}

func maxWidth(m *fem1d.Mesh) float64 {
	w := 0.0
	for e := 0; e < m.Elements(); e++ {
		if h := m.H(e); h > w {
			w = h
		}
	}
	return w
}
