// FE-tree example: the paper's motivating application. A synthetic
// adaptive-substructuring FE-tree is generated, its empirical bisector
// quality is probed, and the tree is distributed over 16 processors with
// HF and BA. The per-processor load profile shows what the guarantees mean
// for a real tree workload.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"bisectlb"
)

func main() {
	const (
		n    = 16
		seed = 7
	)

	problem, err := bisectlb.NewFEMTreeProblem(bisectlb.FEMTreeConfig{
		MaxDepth:    16,
		MinDepth:    4,
		RefineBias:  0.92,
		Singularity: 0.23,
		BaseDofs:    10,
		Seed:        seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FE-tree with total weight %.1f dofs\n", problem.Weight())

	// FE-trees have no a-priori α guarantee: probe it, then declare a
	// conservative value to the α-aware algorithms.
	probed := bisectlb.ProbeAlpha(problem, 256)
	alpha := probed * 0.9
	fmt.Printf("probed bisector quality α̂_min = %.4f → declaring α = %.4f\n\n", probed, alpha)

	ideal := problem.Weight() / n
	for _, alg := range []struct {
		name string
		run  func() (*bisectlb.Result, error)
	}{
		{"HF", func() (*bisectlb.Result, error) { return bisectlb.HF(problem, n) }},
		{"BA", func() (*bisectlb.Result, error) { return bisectlb.BA(problem, n) }},
		{"BA-HF", func() (*bisectlb.Result, error) { return bisectlb.BAHF(problem, n, alpha, 1.0) }},
	} {
		res, err := alg.run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d parts, max %.1f (ratio %.3f vs ideal %.1f)\n",
			alg.name, len(res.Parts), res.Max, res.Ratio, ideal)
		weights := res.Weights()
		sort.Sort(sort.Reverse(sort.Float64Slice(weights)))
		for i, w := range weights {
			bar := int(40 * w / res.Max)
			fmt.Printf("  P%-2d %8.1f |%s\n", i+1, w, strings.Repeat("#", bar))
		}
		fmt.Println()
	}

	// PHF reproduces HF's distribution but in O(log N) parallel time.
	phf, err := bisectlb.PHF(problem, n, alpha)
	if err != nil {
		log.Fatal(err)
	}
	hf, err := bisectlb.HF(problem, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PHF == HF on the FE-tree: %v (%d phase-1 rounds, %d phase-2 iterations)\n",
		bisectlb.SamePartition(hf, &phf.Result), phf.Phase1Rounds, phf.Phase2Iterations)
}
