// Branch-and-bound example (paper ref [9], Karp–Zhang): split the frontier
// of a backtrack search across processors so each explores a near-equal
// share of the remaining candidate leaves. Demonstrates balancing quality
// and the parallel speedup implied by the maximum share.
package main

import (
	"fmt"
	"log"

	"bisectlb"
)

func main() {
	const seed = 11

	problem, err := bisectlb.NewSearchTreeProblem(bisectlb.SearchTreeConfig{
		MaxDepth:   18,
		MaxBranch:  4,
		ExpandProb: 0.9,
		Seed:       seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	total := problem.Weight()
	fmt.Printf("search space with %.0f candidate leaves\n", total)

	probed := bisectlb.ProbeAlpha(problem, 512)
	alpha := probed * 0.9
	fmt.Printf("probed frontier-split quality α̂_min = %.4f\n\n", probed)

	fmt.Printf("%6s  %10s  %10s  %10s  %12s\n", "procs", "HF ratio", "BA ratio", "BA-HF", "est. speedup")
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128} {
		hf, err := bisectlb.HF(problem, n)
		if err != nil {
			log.Fatal(err)
		}
		ba, err := bisectlb.BA(problem, n)
		if err != nil {
			log.Fatal(err)
		}
		hyb, err := bisectlb.BAHF(problem, n, alpha, 2.0)
		if err != nil {
			log.Fatal(err)
		}
		// With perfect balance the speedup would be n; the heaviest share
		// caps it at total / max.
		speedup := total / hf.Max
		fmt.Printf("%6d  %10.3f  %10.3f  %10.3f  %11.1fx\n",
			n, hf.Ratio, ba.Ratio, hyb.Ratio, speedup)
	}

	// Large-scale split with the goroutine-parallel BA.
	const big = 1024
	par, err := bisectlb.ParallelBA(problem, big, bisectlb.ParallelOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nparallel BA split into %d frontiers: ratio %.3f, %d bisections\n",
		len(par.Parts), par.Ratio, par.Bisections)
}
