GO ?= go

.PHONY: all build test race ci chaos clean

all: build test

# Tier-1 verification: everything compiles and the full suite passes.
build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Race-detector pass over the concurrent runtime packages (the
# distributed BA/PHF runtime, the TCP collectives, the in-process
# collectives and the metrics substrate), preceded by vet over the
# whole module.
race:
	$(GO) vet ./...
	$(GO) test -race ./internal/dist ./internal/netcoll ./internal/collective ./internal/obs

# Everything CI runs, in order: vet, the full suite, the race pass.
ci: test race

# Regenerate the X7 chaos-study table.
chaos:
	mkdir -p results
	$(GO) run ./cmd/lbsim -exp chaos -trials 600 -seed 1999 | tee results/chaos.txt

clean:
	$(GO) clean ./...
