GO ?= go

.PHONY: all build test race bench ci chaos sweep serve clean

all: build test

# Tier-1 verification: everything compiles and the full suite passes.
build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Race-detector pass over the concurrent runtime packages (the
# distributed BA/PHF runtime, the TCP collectives, the in-process
# collectives, the metrics substrate and the serving layer), preceded by
# vet over the whole module.
race:
	$(GO) vet ./...
	$(GO) test -race ./internal/dist ./internal/netcoll ./internal/collective ./internal/obs ./internal/service

# Serving-perf trajectory: the service micro-benchmarks plus a short
# open-loop lbload smoke against an in-process server. Rewrites
# BENCH_service.json and results/service_load.txt so the perf file
# cannot silently rot.
bench:
	$(GO) test -run '^$$' -bench Service -benchtime 200x ./internal/service
	mkdir -p results
	$(GO) run ./cmd/lbload -inprocess -rps 200 -duration 3s -out results/service_load.txt -json BENCH_service.json

# Everything CI runs, in order: vet, the full suite, the race pass, the
# serving-perf smoke.
ci: test race bench

# Regenerate the X7 chaos-study table.
chaos:
	mkdir -p results
	$(GO) run ./cmd/lbsim -exp chaos -trials 600 -seed 1999 | tee results/chaos.txt

# Regenerate the X8 service sweep (workers × cache on/off).
sweep:
	mkdir -p results
	$(GO) run ./cmd/lbload -sweep -rps 300 -duration 2s -seed 1999 -out results/service_sweep.txt -json ""

# Run the balancing service locally.
serve:
	$(GO) run ./cmd/lbserve

clean:
	$(GO) clean ./...
