GO ?= go

.PHONY: all build test race bench bench-core bench-short docs-lint ci chaos sweep serve clean

all: build test

# Tier-1 verification: everything compiles and the full suite passes.
build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Race-detector pass over the concurrent runtime packages (the
# distributed BA/PHF runtime, the TCP collectives, the in-process
# collectives, the metrics substrate and the serving layer), preceded by
# vet over the whole module.
race:
	$(GO) vet ./...
	$(GO) test -race ./internal/dist ./internal/netcoll ./internal/collective ./internal/obs ./internal/service

# Serving-perf trajectory: the service micro-benchmarks plus a short
# open-loop lbload smoke against an in-process server. Rewrites
# BENCH_service.json and results/service_load.txt so the perf file
# cannot silently rot.
bench:
	$(GO) test -run '^$$' -bench Service -benchtime 200x ./internal/service
	mkdir -p results
	$(GO) run ./cmd/lbload -inprocess -rps 200 -duration 3s -out results/service_load.txt -json BENCH_service.json

# Core-planner trajectory: the lbbench grid ({HF, PHF, BA, BA-HF} × α ×
# N) over the allocation-free planner. Rewrites BENCH_core.json and
# results/bench_core.txt (EXPERIMENTS.md X9).
bench-core:
	$(GO) run ./cmd/lbbench

# One-iteration pass over every go-test benchmark in the perf-sensitive
# packages. This is a correctness gate, not a measurement: it proves each
# benchmark still builds and runs, so a refactor cannot silently orphan
# the benchmark suite.
bench-short:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/core ./internal/pheap ./internal/bisect ./internal/service .

# Documentation lint: gofmt, vet, and scripts/docs_lint.sh (every
# results/*.txt and BENCH_*.json mentioned in the docs exists; every
# cmd/* is mentioned in README.md).
docs-lint:
	./scripts/docs_lint.sh

# Everything CI runs, in order: vet, the full suite, the race pass, the
# benchmark gates, the docs lint, the serving-perf smoke.
ci: test race bench-short docs-lint bench

# Regenerate the X7 chaos-study table.
chaos:
	mkdir -p results
	$(GO) run ./cmd/lbsim -exp chaos -trials 600 -seed 1999 | tee results/chaos.txt

# Regenerate the X8 service sweep (workers × cache on/off).
sweep:
	mkdir -p results
	$(GO) run ./cmd/lbload -sweep -rps 300 -duration 2s -seed 1999 -out results/service_sweep.txt -json ""

# Run the balancing service locally.
serve:
	$(GO) run ./cmd/lbserve

clean:
	$(GO) clean ./...
