GO ?= go

.PHONY: all build test race cover fuzz-short bench bench-core bench-short bench-gate docs-lint ci chaos sweep sweep-slo sweep-parallel sweep-cluster sweep-rebalance sweep-real serve clean sweep-verify

all: build test

# Tier-1 verification: everything compiles and the full suite passes.
build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Race-detector pass over the whole module (the concurrent packages —
# the distributed BA/PHF runtime, the TCP collectives, the in-process
# collectives, the metrics substrate, the serving layer and the parallel
# executors — plus everything they touch), preceded by vet.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# Coverage gate: full suite with -coverprofile, failing when the
# module-wide statement coverage drops below the floor (COVER_FLOOR,
# default 80%). Writes coverage.out for `go tool cover -func/-html`.
cover:
	./scripts/cover_floor.sh

# Short fuzzing pass: every native fuzz target explores for ~10s on top
# of its checked-in seed corpus (testdata/fuzz/). Plain `go test` always
# replays the seed corpora; this target is the cheap continuous
# exploration CI runs on every push.
FUZZTIME ?= 10s
fuzz-short:
	$(GO) test -run '^$$' -fuzz '^FuzzHFPHFIdentity$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzKernels$$' -fuzztime $(FUZZTIME) ./internal/bisect
	$(GO) test -run '^$$' -fuzz '^FuzzSpecKey$$' -fuzztime $(FUZZTIME) ./internal/service
	$(GO) test -run '^$$' -fuzz '^FuzzHandlers$$' -fuzztime $(FUZZTIME) ./internal/service
	$(GO) test -run '^$$' -fuzz '^FuzzFrameDecode$$' -fuzztime $(FUZZTIME) ./internal/netcoll
	$(GO) test -run '^$$' -fuzz '^FuzzPeerFrameDecode$$' -fuzztime $(FUZZTIME) ./internal/netcoll
	$(GO) test -run '^$$' -fuzz '^FuzzGraphLoader$$' -fuzztime $(FUZZTIME) ./internal/graph
	$(GO) test -run '^$$' -fuzz '^FuzzMatrixLoader$$' -fuzztime $(FUZZTIME) ./internal/spatial

# Guarantee sweep: lbverify's randomized grid over (α, N, family) with
# every paper invariant checked on every instance (EXPERIMENTS.md X10).
sweep-verify:
	$(GO) run ./cmd/lbverify -sweep -instances 10000 -seed 1999

# Serving-perf trajectory: the service micro-benchmarks plus a short
# open-loop lbload smoke against an in-process server. Rewrites
# BENCH_service.json and results/service_load.txt so the perf file
# cannot silently rot.
bench:
	$(GO) test -run '^$$' -bench Service -benchtime 200x ./internal/service
	mkdir -p results
	$(GO) run ./cmd/lbload -inprocess -rps 200 -duration 3s -out results/service_load.txt -json BENCH_service.json

# Serving-perf regression gate: a fresh in-process run compared against
# the checked-in BENCH_service.json "load" section. Warn-only by default
# (shared CI boxes are noisy); BENCH_GATE_STRICT=1 escalates violations
# to a build failure. Runs BEFORE `bench`, which rewrites the baseline.
bench-gate:
	./scripts/bench_gate.sh

# Core-planner trajectory: the lbbench grid ({HF, PHF, BA, BA-HF} × α ×
# N, plus the N ∈ {2^16, 2^20} seq/par and heap/bucket scale cells) over
# the allocation-free planner. Rewrites BENCH_core.json and
# results/bench_core.txt (EXPERIMENTS.md X9, X12).
bench-core:
	$(GO) run ./cmd/lbbench

# Regenerate the X12 parallel speedup study: BA-HF at N=2^20 through the
# multicore planner over the worker axis. Rewrites results/parallel.txt.
# Speedup only shows on a multicore machine; the table records maxprocs.
sweep-parallel:
	mkdir -p results
	$(GO) run ./cmd/lbbench -parallel

# One-iteration pass over every go-test benchmark in the perf-sensitive
# packages. This is a correctness gate, not a measurement: it proves each
# benchmark still builds and runs, so a refactor cannot silently orphan
# the benchmark suite.
bench-short:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/core ./internal/pheap ./internal/bisect ./internal/service .

# Documentation lint: gofmt, vet, and scripts/docs_lint.sh (every
# results/*.txt and BENCH_*.json mentioned in the docs exists; every
# cmd/* is mentioned in README.md; every internal/* package has a
# package comment).
docs-lint:
	./scripts/docs_lint.sh

# Everything CI runs, in order: vet, the full suite, the race pass, the
# coverage gate, the short fuzzing pass, the benchmark gates, the docs
# lint, the serving-perf regression gate (against the old baseline, so it
# must precede `bench`), the serving-perf smoke, the cluster smoke, the
# rebalance smoke, the real-instance sweep.
ci: test race cover fuzz-short bench-short docs-lint bench-gate bench sweep-cluster sweep-rebalance sweep-real

# Regenerate the X15 real-instance study (EXPERIMENTS.md X15): the
# randomized guarantee sweep restricted to the graph and spatial
# families — every invariant checked against the realized α̂ of each run
# — then the fixed-roster study that rewrites results/real.txt and the
# {real} section of BENCH_core.json (timing cells preserved). Both
# halves exit non-zero on any measured-bound violation. CI smoke mode:
# SWEEP_REAL_INSTANCES=200.
SWEEP_REAL_INSTANCES ?= 1200
sweep-real:
	mkdir -p results
	$(GO) run ./cmd/lbverify -sweep -instances $(SWEEP_REAL_INSTANCES) -seed 1999 -families graph,spatial
	$(GO) run ./cmd/lbsim -exp real -seed 1999 > /dev/null

# Regenerate the X7 chaos-study table.
chaos:
	mkdir -p results
	$(GO) run ./cmd/lbsim -exp chaos -trials 600 -seed 1999 | tee results/chaos.txt

# Regenerate the X8 service sweep (workers × cache on/off).
sweep:
	mkdir -p results
	$(GO) run ./cmd/lbload -sweep -rps 300 -duration 2s -seed 1999 -out results/service_sweep.txt -json ""

# Regenerate the X11 SLO study (overload protection, tenant isolation,
# warm restarts). Rewrites results/service_slo.txt and the "slo" section
# of BENCH_service.json; exits non-zero if any acceptance criterion
# fails.
sweep-slo:
	mkdir -p results
	$(GO) run ./cmd/lbload -slo -duration 4s -seed 1999 -slo-out results/service_slo.txt -json BENCH_service.json

# Regenerate the X13 cluster study (3 in-process nodes: exactly-once
# cluster-wide planning under concurrent misses, then an open-loop sweep
# with one node killed midway). Rewrites results/cluster.txt and the
# "cluster" section of BENCH_service.json; exits non-zero if the
# exactly-once invariant breaks or any request goes unserved.
sweep-cluster:
	mkdir -p results
	$(GO) run ./cmd/lbload -cluster -rps 200 -duration 3s -seed 1999 -cluster-out results/cluster.txt -json BENCH_service.json

# Regenerate the X14 rebalance study (incremental replanning: patched vs
# fresh planning as drift grows, DESIGN.md §15). Appends the
# marker-delimited X14 block to results/dynamic.txt and rewrites the
# "rebalance" section of BENCH_service.json; exits non-zero if a small
# drift fails to patch faster than fresh or a patched ratio leaves the
# band.
sweep-rebalance:
	mkdir -p results
	$(GO) run ./cmd/lbload -rebalance -rebalance-out results/dynamic.txt -json BENCH_service.json

# Run the balancing service locally.
serve:
	$(GO) run ./cmd/lbserve

clean:
	$(GO) clean ./...
