package bisectlb

import (
	"io"

	"bisectlb/internal/graph"
	"bisectlb/internal/spatial"
	"bisectlb/internal/verify"
)

// Real-instance substrates (DESIGN.md §16): actual graphs, hypergraphs
// and 2D load matrices bisected by real algorithms — the multilevel
// hypergraph bisector of internal/graph and the cut-line bisector of
// internal/spatial — rather than by a stochastic model. Neither carries
// an a-priori α guarantee beyond its construction contract (graph:
// every performed bisection lands in the (1±ε)·W/2 band; spatial: the
// lighter side of every performed cut holds ≥ α·W); use ProbeAlpha or
// the verify subsystem's measured-α̂ bounds to reason about achieved
// quality.

// NewGraphProblem returns a seed-derived graph/hypergraph instance from
// the same generator roster the lbverify "graph" family sweeps (meshes,
// chorded rings, random hypergraphs), wrapped as a multilevel-bisection
// problem at the default balance slack. The same seed always yields the
// same instance and the same bisection tree.
func NewGraphProblem(seed uint64) (Problem, error) {
	h, err := verify.GraphInstance(seed)
	if err != nil {
		return nil, err
	}
	return graph.New(h, graph.Config{Seed: seed | 1})
}

// NewSpatialProblem returns a seed-derived 2D load-matrix instance from
// the same generator roster the lbverify "spatial" family sweeps
// (uniform, blob and ridge load patterns), wrapped as a cut-line
// bisection problem at the default declared α. Deterministic per seed.
func NewSpatialProblem(seed uint64) (Problem, error) {
	m, err := verify.SpatialInstance(seed)
	if err != nil {
		return nil, err
	}
	return spatial.New(m, spatial.Config{Seed: seed | 1})
}

// LoadGraphProblem reads a Metis-format graph (see internal/graph) and
// wraps it as a multilevel-bisection problem. seed pins the bisection
// tree; 0 selects the default.
func LoadGraphProblem(r io.Reader, seed uint64) (Problem, error) {
	h, err := graph.LoadGraph(r)
	if err != nil {
		return nil, err
	}
	return graph.New(h, graph.Config{Seed: seed})
}

// LoadHypergraphProblem reads an hMetis-format hypergraph and wraps it
// as a multilevel-bisection problem. seed pins the bisection tree.
func LoadHypergraphProblem(r io.Reader, seed uint64) (Problem, error) {
	h, err := graph.LoadHypergraph(r)
	if err != nil {
		return nil, err
	}
	return graph.New(h, graph.Config{Seed: seed})
}

// LoadMatrixProblem reads a MatrixMarket-style integer load matrix (see
// internal/spatial) and wraps it as a cut-line bisection problem. seed
// pins problem identities; the bisector itself is deterministic.
func LoadMatrixProblem(r io.Reader, seed uint64) (Problem, error) {
	m, err := spatial.LoadMatrix(r)
	if err != nil {
		return nil, err
	}
	return spatial.New(m, spatial.Config{Seed: seed})
}
