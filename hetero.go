package bisectlb

import "bisectlb/internal/hetero"

// HeteroResult describes a partition over processors with unequal speeds;
// HeteroAssignment is one subproblem-to-processor-range mapping. The
// quality measure generalises the paper's: makespan max_i w_i/s_i against
// the ideal w(p)/Σs_i.
type (
	HeteroResult     = hetero.Result
	HeteroAssignment = hetero.Assignment
)

// HeteroBA partitions p over processors with the given positive speeds
// using the heterogeneous generalisation of Algorithm BA: each bisection
// cuts the processor range at the capacity prefix that best approximates
// the children's weight ratio. Speeds are used in the given order as the
// range order; pass them sorted descending to put fast processors at the
// front of heavy ranges (see SortedSpeeds).
//
// This is an extension beyond the paper, which assumes identical
// processors; with all speeds equal it reduces exactly to Algorithm BA.
func HeteroBA(p Problem, speeds []float64) (*HeteroResult, error) {
	m, err := hetero.NewMachine(speeds)
	if err != nil {
		return nil, err
	}
	return hetero.BA(p, m)
}

// HeteroHF partitions p into one part per processor with Algorithm HF and
// assigns parts to processors by sorted matching (heaviest part to fastest
// processor), which is the optimal one-to-one assignment of the computed
// parts.
func HeteroHF(p Problem, speeds []float64) (*HeteroResult, error) {
	m, err := hetero.NewMachine(speeds)
	if err != nil {
		return nil, err
	}
	return hetero.HF(p, m)
}

// SortedSpeeds returns a descending copy of speeds, the recommended range
// order for HeteroBA.
func SortedSpeeds(speeds []float64) []float64 {
	out := append([]float64(nil), speeds...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] > out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
