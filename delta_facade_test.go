package bisectlb_test

import (
	"errors"
	"testing"

	"bisectlb"
)

// TestDeltaFacade exercises the incremental-replanning facade end to
// end: a noop patch returns the prior plan object, a moderate drift
// patches it, and bad input surfaces the exported typed errors.
func TestDeltaFacade(t *testing.T) {
	root, kernel, err := bisectlb.NewSyntheticFlat(1, 0.2, 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	pl := bisectlb.NewPlanner(64)
	prior := &bisectlb.Plan{}
	if err := bisectlb.BalanceInto(prior, pl, kernel, root, 64,
		bisectlb.Config{Algorithm: bisectlb.HFAlgorithm, Alpha: 0.2}); err != nil {
		t.Fatal(err)
	}

	dp := bisectlb.NewDeltaPlanner(64)
	pp := &bisectlb.PatchedPlan{}
	opt := bisectlb.PatchOptions{Alpha: 0.2}

	got, stats, err := dp.PatchInto(pp, kernel, root, prior, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Outcome != bisectlb.PatchNoop || got != prior {
		t.Fatalf("zero-delta patch: outcome %v, same object %v", stats.Outcome, got == prior)
	}

	// Drift the heaviest splittable part to 12× the mean: dirty, but far
	// below the full-replan weight fraction.
	mean := prior.Total / float64(prior.N)
	best := -1
	for i, pt := range prior.Parts {
		if !pt.Node.Leaf && (best < 0 || pt.Node.Weight > prior.Parts[best].Node.Weight) {
			best = i
		}
	}
	deltas := []bisectlb.WeightDelta{{
		ID:     prior.Parts[best].Node.ID,
		Factor: 12 * mean / prior.Parts[best].Node.Weight,
	}}
	got, stats, err = dp.PatchInto(pp, kernel, root, prior, deltas, opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Outcome != bisectlb.PatchPatched || got != &pp.Plan {
		t.Fatalf("drifted patch: outcome %v", stats.Outcome)
	}
	if stats.Dirty < 1 || len(pp.GroupProcs) == 0 {
		t.Fatalf("patched stats %+v with %d groups", stats, len(pp.GroupProcs))
	}
	loads := pp.GroupLoads(nil)
	if len(loads) != len(pp.GroupProcs) {
		t.Fatalf("%d group loads for %d groups", len(loads), len(pp.GroupProcs))
	}

	if _, _, err := dp.PatchInto(pp, kernel, root, prior,
		[]bisectlb.WeightDelta{{ID: 0xdead, Factor: 2}}, opt); !errors.Is(err, bisectlb.ErrUnknownPart) {
		t.Fatalf("unknown part: %v", err)
	}
	if _, _, err := dp.PatchInto(pp, kernel, root, prior,
		[]bisectlb.WeightDelta{{ID: prior.Parts[0].Node.ID, Factor: -1}}, opt); !errors.Is(err, bisectlb.ErrBadFactor) {
		t.Fatalf("bad factor: %v", err)
	}
	bad := *prior
	bad.Total *= 2
	if _, _, err := dp.PatchInto(pp, kernel, root, &bad, nil, opt); !errors.Is(err, bisectlb.ErrPlanMismatch) {
		t.Fatalf("plan mismatch: %v", err)
	}
}
